package cricket

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"

	"cricket/internal/guest"
	"cricket/internal/netsim"
)

// onceCloseConn counts a connection's close exactly once, however
// many times the transport layers call Close on their wrappers.
type onceCloseConn struct {
	io.ReadWriteCloser
	once    sync.Once
	onClose func()
}

func (c *onceCloseConn) Close() error {
	c.once.Do(c.onClose)
	return c.ReadWriteCloser.Close()
}

// ---- satellite: Reopen that fails mid-dial must not go half-open ----

// A carrier fault poisons the channel set; the recovery Reopen then
// fails partway through its dials. The transport must treat that
// failed Reopen as still-poisoned (not half-open-but-reusable), close
// the partial set, and succeed cleanly once dials work again — with
// every connection it ever opened accounted for at the end.
func TestParallelSocketsReopenDialFailsThenSucceeds(t *testing.T) {
	e := newXportEnv(t)
	var mu sync.Mutex
	dials, live := 0, 0
	failing := false
	dial := func() (io.ReadWriteCloser, error) {
		mu.Lock()
		dials++
		n := dials
		fail := failing
		mu.Unlock()
		if fail {
			return nil, errors.New("injected dial failure")
		}
		conn, err := e.dataDial()
		if err != nil {
			return nil, err
		}
		var rwc io.ReadWriteCloser = conn
		if n == 2 {
			// Second channel of the first set dies mid-chunk, poisoning
			// the set.
			rwc = netsim.NewFaultConn(conn, netsim.Fault{AfterBytes: 10 << 10, Kind: netsim.FaultDrop})
		}
		mu.Lock()
		live++
		mu.Unlock()
		return &onceCloseConn{ReadWriteCloser: rwc, onClose: func() {
			mu.Lock()
			live--
			mu.Unlock()
		}}, nil
	}
	conn, err := e.redial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Connect(conn, Options{
		Platform: guest.NativeC(),
		Transfer: TransferParallelSockets,
		Sockets:  3,
		DataDial: dial,
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 256 << 10
	p, err := c.Malloc(n)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(n, 0x3C)

	// 1. The faulted set poisons itself mid-transfer.
	if err := c.MemcpyHtoD(p, data); !errors.Is(err, ErrCarrier) {
		t.Fatalf("transfer over faulted set = %v, want carrier fault", err)
	}

	// 2. Recovery Reopen fails mid-dial: the first re-dial succeeds,
	// the second errors. The transport must report a carrier fault and
	// close the partial set rather than keeping it.
	mu.Lock()
	failing = true
	mu.Unlock()
	if err := c.MemcpyHtoD(p, data); !errors.Is(err, ErrCarrier) {
		t.Fatalf("transfer with failing re-dial = %v, want carrier fault", err)
	}
	mu.Lock()
	if live != 0 {
		mu.Unlock()
		t.Fatalf("live conns = %d after failed Reopen, want 0 (partial set leaked)", live)
	}
	failing = false
	mu.Unlock()

	// 3. Dials work again: the next transfer runs on a complete fresh
	// set and round-trips bit-exact — no desync from the half-open era.
	if err := c.MemcpyHtoD(p, data); err != nil {
		t.Fatalf("transfer after dials healed: %v", err)
	}
	got, err := c.MemcpyDtoH(p, n)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip corrupted after dial-fails-then-succeeds")
	}

	mu.Lock()
	if live != 3 {
		mu.Unlock()
		t.Fatalf("live conns = %d with a healthy set, want 3", live)
	}
	mu.Unlock()
	c.Close()
	mu.Lock()
	defer mu.Unlock()
	if live != 0 {
		t.Fatalf("live conns = %d after Close, want 0 (leak)", live)
	}
}

// ---- satellite: a Close()d transport must stay closed ----

// A transfer after Close must fail with a carrier error instead of
// silently re-dialing a fresh carrier the owner believes released.
func TestTransportClosedNeverRedials(t *testing.T) {
	for _, m := range realMethods {
		t.Run(m.String(), func(t *testing.T) {
			e := newXportEnv(t)
			var mu sync.Mutex
			opens := 0
			opts := e.options(m)
			switch m {
			case TransferParallelSockets:
				inner := opts.DataDial
				opts.DataDial = func() (io.ReadWriteCloser, error) {
					mu.Lock()
					opens++
					mu.Unlock()
					return inner()
				}
			case TransferSharedMem:
				inner := opts.ShmOpen
				opts.ShmOpen = func() (*netsim.ShmRing, error) {
					mu.Lock()
					opens++
					mu.Unlock()
					return inner()
				}
			case TransferRDMA:
				inner := opts.RdmaOpen
				opts.RdmaOpen = func() (*netsim.RdmaEndpoint, error) {
					mu.Lock()
					opens++
					mu.Unlock()
					return inner()
				}
			}
			conn, err := e.redial()
			if err != nil {
				t.Fatal(err)
			}
			c, err := Connect(conn, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			const n = 32 << 10
			p, err := c.Malloc(n)
			if err != nil {
				t.Fatal(err)
			}
			data := pattern(n, 0x77)
			if err := c.tr.Write(p, data); err != nil {
				t.Fatalf("write before close: %v", err)
			}

			if err := c.tr.Close(); err != nil {
				t.Fatalf("transport close: %v", err)
			}
			mu.Lock()
			before := opens
			mu.Unlock()

			if err := c.tr.Write(p, data); !errors.Is(err, ErrCarrier) {
				t.Fatalf("write after close = %v, want carrier fault", err)
			}
			if err := c.tr.Reopen(); !errors.Is(err, ErrCarrier) {
				t.Fatalf("Reopen after close = %v, want carrier fault", err)
			}
			mu.Lock()
			defer mu.Unlock()
			if opens != before {
				t.Fatalf("closed transport re-dialed: opens %d -> %d", before, opens)
			}
		})
	}
}
