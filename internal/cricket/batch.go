package cricket

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cricket/internal/cuda"
	"cricket/internal/gpu"
	"cricket/internal/obs"
)

// This file implements the client side of batched execution (see
// cricket.x BATCH_EXEC): calls whose results the application does not
// need immediately — kernel launches, stream copies, memsets, event
// records, stream-sync ordering markers — are appended to a per-client
// command queue and shipped as one RPC record, amortizing the
// per-call round trip the paper identifies as the dominant unikernel
// overhead (§5 "reduce per-call overhead").
//
// Queue semantics:
//
//   - Entries execute on the server strictly in submission order, so
//     batching never reorders work relative to the unbatched stream.
//   - The queue flushes when it reaches Options.Batch entries, when
//     queued payload bytes exceed Options.BatchBytes, before ANY
//     other RPC the client issues (a synchronous call must observe
//     all queued work), on the Options.BatchAge timer, on Flush, and
//     on Close.
//   - Per-entry failures are not returned at the call site — the
//     first failed status is remembered and surfaced once at the next
//     sync point (DeviceSynchronize, MemcpyDtoH, EventElapsed,
//     Checkpoint), exactly like CUDA's deferred async error model in
//     internal/cuda.
//
// The enqueue path is allocation-free in steady state: the entry
// backing array is sized at connect time and each entry's Data buffer
// is recycled across flushes.

// batchQueue is one client's pending command queue.
type batchQueue struct {
	mu       sync.Mutex
	entries  []BatchEntry
	bytes    int           // queued Data payload bytes
	maxN     int           // flush at this many entries
	maxBytes int           // flush above this many payload bytes
	age      time.Duration // flush a non-empty queue after this long
	timer    *time.Timer   // pending age flush, nil when idle
	deferred error         // first in-band failure awaiting a sync point
}

// push appends one entry, recycling the backing array and the
// entry's Data buffer so a warm queue allocates nothing.
func (q *batchQueue) push(op int32, handle, stream, n uint64, value uint32, grid, block gpu.Dim3, payload []byte) {
	if len(q.entries) < cap(q.entries) {
		q.entries = q.entries[:len(q.entries)+1]
	} else {
		q.entries = append(q.entries, BatchEntry{})
	}
	e := &q.entries[len(q.entries)-1]
	e.Op = op
	// Recycled entries may carry a stale trace id from a previous
	// flush; clear it so BatchExec mints a fresh one when tracing.
	e.TraceId = 0
	e.Handle = handle
	e.Stream = stream
	e.N = n
	e.Value = value
	e.GridX, e.GridY, e.GridZ = grid.X, grid.Y, grid.Z
	e.BlockX, e.BlockY, e.BlockZ = block.X, block.Y, block.Z
	e.Data = append(e.Data[:0], payload...)
	q.bytes += len(payload)
}

// enqueue queues one asynchronous call and flushes if a threshold is
// reached. The returned error is a transport failure from a triggered
// flush, never an in-band CUDA status (those defer to the sync point).
func (c *Client) enqueue(op int32, handle, stream, n uint64, value uint32, grid, block gpu.Dim3, payload []byte) error {
	q := c.batch
	q.mu.Lock()
	defer q.mu.Unlock()
	// Flush before pushing when this entry would take the queued
	// payload past maxBytes; pushing first and checking after shipped
	// batches above the threshold by up to one entry. The arithmetic
	// pre-check keeps push's recycled buffers as the only hot path. An
	// entry larger than maxBytes by itself still ships alone.
	if len(q.entries) > 0 && q.bytes+len(payload) > q.maxBytes {
		if err := c.flushLocked(); err != nil {
			return err
		}
	}
	q.push(op, handle, stream, n, value, grid, block, payload)
	if len(q.entries) >= q.maxN || q.bytes > q.maxBytes {
		return c.flushLocked()
	}
	if q.age > 0 && q.timer == nil {
		q.timer = time.AfterFunc(q.age, func() { c.Flush() })
	}
	return nil
}

// flushLocked ships the queue as one BATCH_EXEC. Callers hold q.mu.
// The queue is emptied even on transport failure: the client cannot
// know which entries executed, and retrying here would risk double
// execution (Session, which can, keeps its own replay-safe queue).
func (c *Client) flushLocked() error {
	q := c.batch
	if len(q.entries) == 0 {
		return nil
	}
	if q.timer != nil {
		q.timer.Stop()
		q.timer = nil
	}
	sts, err := c.BatchExec(q.entries)
	q.entries = q.entries[:0]
	q.bytes = 0
	if err != nil {
		return err
	}
	if q.deferred == nil {
		for _, st := range sts {
			if st != 0 {
				q.deferred = cuda.Error(st)
				break
			}
		}
	}
	return nil
}

// Flush sends any queued batched calls now. It is a no-op when
// batching is off or the queue is empty. In-band per-entry failures
// are not returned here; they surface at the next sync point.
func (c *Client) Flush() error {
	if c.batch == nil {
		return nil
	}
	c.batch.mu.Lock()
	defer c.batch.mu.Unlock()
	return c.flushLocked()
}

// flushBatch is the ordering barrier every synchronous RPC passes
// before touching the wire: all queued work must reach the server
// first.
func (c *Client) flushBatch() error {
	return c.Flush()
}

// takeDeferred reports and clears the pending async batch error, the
// client-side mirror of cudaDeviceSynchronize returning a failed
// launch once.
func (c *Client) takeDeferred() error {
	if c.batch == nil {
		return nil
	}
	c.batch.mu.Lock()
	defer c.batch.mu.Unlock()
	err := c.batch.deferred
	c.batch.deferred = nil
	return err
}

// BatchExec ships prepared entries as one BATCH_EXEC record and
// returns the per-entry status vector. Accounting treats each entry
// as one logical API call (and each launch entry as one kernel
// launch), so a batched run reports the same Stats as its unbatched
// twin. The method is exported for Session, which keeps its own
// replay-safe queue and flushes it through here.
func (c *Client) BatchExec(entries []BatchEntry) ([]int32, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	col := c.obs
	if col != nil {
		// Mint a per-entry call id so each logical call inside the
		// batch joins with its server-side span. Minting here (not at
		// enqueue) keeps the enqueue hot path free of tracing work and
		// covers Session's replay queue, which also flushes through
		// BatchExec. Entries that already carry an id keep it.
		for i := range entries {
			if entries[i].TraceId == 0 {
				entries[i].TraceId = col.NextID()
			}
		}
	}
	var launches, payload uint64
	for i := range entries {
		switch entries[i].Op {
		case BatchOpLaunch:
			launches++
		case BatchOpMemcpyHtod:
			payload += uint64(len(entries[i].Data))
		}
	}
	c.mu.Lock()
	c.stats.APICalls += uint64(len(entries))
	c.stats.KernelLaunches += launches
	c.mu.Unlock()
	// The launch bookkeeping the language profile charges per call
	// (see LaunchKernel) still happens per entry, client-side.
	if c.sim && launches > 0 && c.platform.LaunchExtraNS > 0 {
		c.path.Clock.Advance(time.Duration(launches*uint64(c.platform.LaunchExtraNS)) * time.Nanosecond)
	}
	var t0 time.Time
	if col != nil {
		t0 = time.Now()
	}
	var res BatchResult
	err := c.charge(payload > 0, 1, func(ctx context.Context) (e error) {
		res, e = c.gen.BatchExecContext(ctx, BatchArgs{Entries: entries})
		return
	})
	if err != nil {
		return nil, err
	}
	if len(res.Status) != len(entries) {
		return nil, fmt.Errorf("cricket: batch reply carries %d statuses for %d entries", len(res.Status), len(entries))
	}
	if col != nil {
		// Amortize the batch round trip over its entries so each
		// logical call gets a client histogram sample under the
		// procedure it stands in for, mirroring the per-entry Stats
		// accounting above.
		wall := time.Since(t0)
		share := wall / time.Duration(len(entries))
		end := col.Now()
		for i := range entries {
			proc := batchProc(entries[i].Op)
			col.ObserveClient(proc, share)
			col.RecordSpan(obs.Span{
				CallID: entries[i].TraceId, Entry: int32(i), Proc: proc,
				Side: obs.SideClient, Stage: obs.StageCall,
				Start: end - int64(wall), Dur: int64(share),
				Err: res.Status[i],
			})
		}
	}
	var accepted uint64
	for i, st := range res.Status {
		if st == 0 && entries[i].Op == BatchOpMemcpyHtod {
			accepted += uint64(len(entries[i].Data))
		}
	}
	if accepted > 0 {
		c.mu.Lock()
		c.stats.BytesToDevice += accepted
		c.mu.Unlock()
	}
	return res.Status, nil
}

// MemcpyHtoDAsync implements cudaMemcpyAsync(HostToDevice) on a
// stream. With batching enabled the payload is captured into the
// queue (the caller may reuse data immediately) and travels with the
// next flush; without batching it degenerates to the synchronous
// copy, which satisfies the async contract trivially.
func (c *Client) MemcpyHtoDAsync(dst gpu.Ptr, data []byte, s cuda.Stream) error {
	if c.batch == nil {
		return c.MemcpyHtoD(dst, data)
	}
	return c.enqueue(BatchOpMemcpyHtod, uint64(dst), uint64(s), 0, 0, gpu.Dim3{}, gpu.Dim3{}, data)
}

// Batching reports whether the client queues asynchronous calls.
func (c *Client) Batching() bool { return c.batch != nil }

// InvalidateTopology drops the cached device-topology answers (see
// Options.CacheTopology). A Session never needs to call it: a
// reconnect builds a fresh Client, so an epoch change invalidates the
// cache structurally.
func (c *Client) InvalidateTopology() {
	c.mu.Lock()
	c.devCountOK = false
	c.props = nil
	c.mu.Unlock()
}
