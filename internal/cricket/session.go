package cricket

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"cricket/internal/cubin"
	"cricket/internal/cuda"
	"cricket/internal/gpu"
	"cricket/internal/oncrpc"
	"cricket/internal/tune"
)

// This file implements fault-tolerant Cricket sessions. A plain Client
// dies with its transport: one dropped TCP connection (or one server
// restart) poisons every in-flight and future call. A Session wraps
// the same CUDA API but owns a redial function and enough replay state
// to survive both failure modes:
//
//   - Connection loss, server alive: reconnect with exponential
//     backoff and resume. The server kept its handle tables, so
//     nothing needs replaying — the session detects this by comparing
//     the server's boot epoch (SRV_GET_EPOCH) against the one it saw
//     at connect time.
//   - Server restart: every server-side handle and allocation is gone.
//     The session replays its resources on the new instance: reloads
//     modules, re-resolves functions and globals, re-allocates device
//     memory, and recreates streams and events. Because the server
//     handles change across a replay, the session hands the
//     application stable virtual handles and translates at the API
//     boundary — including device-pointer parameters inside kernel
//     argument buffers, located via the module's cubin parameter
//     metadata.
//
// Memory *contents* survive a restart only through checkpoints: when
// the application checkpoints (CkpCheckpoint) and the server persists
// checkpoints durably (Server.SetCheckpointDir), a replay first asks
// the new instance to CKP_RESTORE, then migrates each surviving
// allocation into its fresh buffer with device-to-device copies.
// Allocations made after the last checkpoint come back zeroed, and
// event timestamps recorded before the failure are lost — EventElapsed
// across a replay reports an in-band error, exactly as CUDA reports
// unrecorded events.
//
// Failure semantics at the call boundary: transport errors are
// retried transparently (the call may execute twice server-side —
// Cricket's CUDA surface is idempotent at this granularity or
// replayed under fresh handles); per-call deadline expiries
// (oncrpc.ErrTimeout) and in-band CUDA errors are returned to the
// caller and do NOT trigger reconnection, because the transport is
// still usable.

// ErrSessionClosed reports a call on a closed session.
var ErrSessionClosed = errors.New("cricket: session closed")

// ErrGiveUp reports that reconnection attempts exhausted the session's
// attempt budget.
var ErrGiveUp = errors.New("cricket: reconnect attempts exhausted")

// An EndpointDialer picks a server endpoint and opens a transport to
// it, generalizing the fixed Redial target. A session consults it on
// every connection attempt, so the chosen endpoint may change between
// attempts — this is how the fleet layer (internal/fleet) re-points a
// session at the next-ranked live server after a failure. After each
// attempt the session reports the outcome through Result, giving a
// load-aware picker the feedback it routes on. Implementations must
// be safe for concurrent use by multiple sessions.
type EndpointDialer interface {
	// DialEndpoint picks an endpoint and opens a transport to it. The
	// returned name identifies the endpoint in Result and
	// Session.Endpoint; it must be stable across dials so outcomes
	// aggregate per endpoint.
	DialEndpoint() (conn io.ReadWriteCloser, endpoint string, err error)
	// Result reports how the connection attempt against endpoint
	// ended: nil after a successful connect-and-attach handshake, the
	// dial, handshake, or attach error otherwise. In-band
	// cudaErrorServerOverloaded sheds arrive here too — a load-aware
	// picker treats them as a signal to spill the session to the next
	// ranked endpoint.
	Result(endpoint string, err error)
}

// SessionOptions configure a fault-tolerant session.
type SessionOptions struct {
	// Options configure each underlying Client (platform, transfer
	// method, timeouts). They are reapplied on every reconnect.
	Options
	// Redial opens a fresh transport to the server. Required unless
	// Dialer is set.
	Redial func() (io.ReadWriteCloser, error)
	// Dialer, when set, replaces Redial with an endpoint picker: every
	// connection attempt (including reconnects) asks it for a possibly
	// different endpoint. See EndpointDialer.
	Dialer EndpointDialer
	// MaxAttempts bounds consecutive reconnect attempts per recovery
	// (default 8). The budget resets after a successful reconnect.
	MaxAttempts int
	// BackoffBase is the first retry delay (default 50ms); each
	// attempt doubles it up to BackoffMax (default 5s). Jitter in
	// [50%, 100%] of the computed delay decorrelates reconnect storms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Restore asks a restarted server for CKP_RESTORE before replaying
	// resources, recovering checkpointed memory contents (default on;
	// set NoRestore to disable).
	NoRestore bool
	// Seed makes the backoff jitter deterministic for tests; zero
	// seeds from the clock.
	Seed int64
	// Sleep replaces time.Sleep between attempts (tests).
	Sleep func(time.Duration)
	// Nonce identifies the session to the server's lease layer
	// (SRV_ATTACH). Reconnecting with the same nonce inside the lease
	// TTL re-binds the existing lease, so server-side handles survive
	// the drop; after expiry the server grants a fresh lease and the
	// session replays. Zero mints a random nonce.
	Nonce uint64
	// Window, when set, gates every RPC the session issues through an
	// adaptive in-flight window (internal/tune). The window is
	// typically shared by every session in the process, so total
	// concurrency against the server walks the knee of the
	// latency/throughput curve instead of scaling with session count.
	// Overload sheds feed the window as backpressure. Nil disables
	// gating.
	Window *tune.Window
	// Coalescer, when set (and Options.Batch > 0), adapts the batch
	// flush thresholds from observed flush latency instead of keeping
	// the static Batch/BatchBytes values. The session adopts the
	// coalescer's thresholds at connect and after every flush; the
	// enqueue hot path is untouched. Not shared between sessions.
	Coalescer *tune.Coalescer
}

func (o *SessionOptions) withDefaults() SessionOptions {
	v := *o
	if v.MaxAttempts <= 0 {
		v.MaxAttempts = 8
	}
	if v.BackoffBase <= 0 {
		v.BackoffBase = 50 * time.Millisecond
	}
	if v.BackoffMax <= 0 {
		v.BackoffMax = 5 * time.Second
	}
	if v.Sleep == nil {
		v.Sleep = time.Sleep
	}
	return v
}

// SessionStats count recovery activity; they are the observable record
// of what fault tolerance cost.
type SessionStats struct {
	// Reconnects counts successful reconnections.
	Reconnects uint64
	// Replays counts reconnections that found a restarted server and
	// replayed session resources.
	Replays uint64
	// Restores counts replays whose CKP_RESTORE recovered checkpointed
	// memory contents.
	Restores uint64
	// DialAttempts counts every dial, including failed ones.
	DialAttempts uint64
	// RecoveryTime is total wall-clock time spent reconnecting.
	RecoveryTime time.Duration
	// Overloads counts calls (and attaches) the server shed under
	// admission control; each one was retried after backing off on the
	// server's hint.
	Overloads uint64
	// Migrations counts completed live migrations (MigrateTo /
	// MigrateVia cutovers). Aborted migrations do not count.
	Migrations uint64
}

// Virtual handle/pointer state. Handles the application holds never
// change; the session remaps them to current server values. Every
// resource records the device that was current when it was created:
// the server's memory ops act on ITS current device and device address
// arenas overlap, so replaying (or migrating) a multi-device session
// must rebuild each resource under an explicit SetDevice bracket or
// silently corrupt a neighbor device's memory.
type sessAlloc struct {
	size uint64
	srv  gpu.Ptr
	dev  int // device current at cudaMalloc time
	// dirty is the migration-era chunk bitset: bit i set means bytes
	// [i*migrateChunk, (i+1)*migrateChunk) changed since the last
	// pre-copy pass shipped them. Nil whenever no migration is
	// tracking writes (the common case), so steady state pays nothing.
	dirty []uint64
}

type sessGlobal struct {
	mod   uint64 // virtual module handle
	name  string
	size  uint64
	srv   gpu.Ptr
	dirty []uint64 // migration dirty-chunk bitset, as in sessAlloc
}

type sessModule struct {
	image []byte
	meta  *cubin.Image // parsed client-side for param layouts
	srv   cuda.Module
	dev   int // device current at cuModuleLoad time (binds the SASS image)
}

type sessFunc struct {
	mod  uint64 // virtual module handle
	name string
	srv  cuda.Function
}

// sessStream and sessEvent pair the current server handle with the
// device the handle was created under, so a replay regroups them.
type sessStream struct {
	srv cuda.Stream
	dev int
}

type sessEvent struct {
	srv cuda.Event
	dev int
}

// A Session is a fault-tolerant Cricket client: the same CUDA surface
// as Client, surviving transport failures and server restarts. Methods
// are safe for use from one application goroutine; Stats and
// SessionStats may be read concurrently.
type Session struct {
	opts  SessionOptions
	rng   *rand.Rand
	nonce uint64 // lease identity presented at every SRV_ATTACH

	mu       sync.Mutex
	c        *Client
	epoch    uint64        // server epoch at last connect; 0 = unknown
	endpoint string        // endpoint of the last successful connect (Dialer only)
	hint     time.Duration // pending server backpressure hint for the next backoff
	closed   bool

	// Live-migration state (migrate.go). migrating serializes
	// MigrateTo; trackDirty turns writes into dirty-chunk marks for
	// delta pre-copy; quiescing routes the drain's batch flush through
	// doQuiet so the stop-the-world pause neither waits on nor feeds
	// the adaptive window.
	migrating  bool
	trackDirty bool
	quiescing  bool

	dev      int // last cudaSetDevice, replayed on recovery
	nextV    uint64
	nextVPtr gpu.Ptr
	allocs   map[gpu.Ptr]*sessAlloc
	globals  map[gpu.Ptr]*sessGlobal
	modules  map[uint64]*sessModule
	funcs    map[uint64]*sessFunc
	streams  map[uint64]sessStream
	events   map[uint64]sessEvent

	// Batched execution (Options.Batch). The session owns the queue —
	// a Client dies with its transport, and a queue that died with it
	// could not be replayed — so sub-clients always run unbatched.
	// Entries are recorded in VIRTUAL handle terms and translated to
	// server handles at flush time, inside the do() retry loop: a
	// flush that rides through a server restart re-translates against
	// the replayed mappings, making the whole batch idempotent.
	batchq        []sessBatchOp
	batchBytes    int
	batchMaxN     int // 0 = batching off
	batchMaxBytes int
	batchAge      time.Duration
	batchTimer    *time.Timer
	batchDeferred error           // first in-band batch failure awaiting a sync point
	wireBuf       []BatchEntry    // reused flush translation buffer
	argArena      []byte          // reused flush-time launch-arg rewrite arena
	coalescer     *tune.Coalescer // adaptive thresholds; nil = static

	statmu sync.Mutex
	sstats SessionStats
}

// sessBatchOp is one queued asynchronous call in virtual-handle
// terms. Which fields are meaningful depends on op, mirroring
// batch_entry in cricket.x.
type sessBatchOp struct {
	op          int32
	fn          *sessFunc // launch: replay updates fn.srv in place
	grid, block gpu.Dim3
	shared      uint32
	stream      cuda.Stream // virtual
	event       cuda.Event  // virtual
	ptr         gpu.Ptr     // virtual destination (htod, memset)
	val         byte
	n           uint64
	data        []byte // captured payload: launch args (virtual) or htod bytes
}

// virtual pointer arena: far above any real device address, with a
// guard gap so out-of-bounds arithmetic never lands in a neighbor.
const (
	vPtrBase  gpu.Ptr = 1 << 62
	vPtrGuard gpu.Ptr = 1 << 20
)

// NewSession dials the server and returns a connected session.
func NewSession(opts SessionOptions) (*Session, error) {
	if opts.Redial == nil && opts.Dialer == nil {
		return nil, errors.New("cricket: SessionOptions.Redial or Dialer is required")
	}
	o := opts.withDefaults()
	seed := o.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	s := &Session{
		rng:      rand.New(rand.NewSource(seed)),
		nextVPtr: vPtrBase,
		allocs:   make(map[gpu.Ptr]*sessAlloc),
		globals:  make(map[gpu.Ptr]*sessGlobal),
		modules:  make(map[uint64]*sessModule),
		funcs:    make(map[uint64]*sessFunc),
		streams:  make(map[uint64]sessStream),
		events:   make(map[uint64]sessEvent),
	}
	s.nonce = o.Nonce
	if s.nonce == 0 {
		s.nonce = mintNonce()
	}
	if o.Batch > 0 {
		s.batchMaxN = o.Batch
		s.batchMaxBytes = o.BatchBytes
		if s.batchMaxBytes <= 0 {
			s.batchMaxBytes = 1 << 20
		}
		s.batchAge = o.BatchAge
		// The session owns the queue; its clients stay unbatched so a
		// transport death cannot take queued entries with it.
		o.Options.Batch = 0
		if o.Coalescer != nil {
			// Adaptive coalescing: the tuner owns the thresholds from
			// here on; Batch/BatchBytes were just the starting point
			// unless the tuner was seeded with its own.
			s.coalescer = o.Coalescer
			s.batchMaxN, s.batchMaxBytes = s.coalescer.Thresholds()
		}
	}
	s.opts = o
	c, epoch, _, err := s.dialOnce()
	if err != nil {
		if !isOverload(err) && o.Dialer == nil {
			return nil, err
		}
		// The server shed our attach under admission control — that is
		// backpressure, not rejection: back off on its hint and keep
		// trying, up to the session's attempt budget. Likewise, with an
		// endpoint picker a failed first dial may just mean the
		// top-ranked member is unreachable; recover() retries and may
		// land on the next-ranked one.
		if rerr := s.recover(); rerr != nil {
			return nil, rerr
		}
		return s, nil
	}
	s.c, s.epoch = c, epoch
	return s, nil
}

// mintNonce draws a random nonzero session nonce. Sessions in the same
// process (and, with overwhelming probability, across guests) never
// collide, so one session's lease cannot be re-bound by another.
func mintNonce() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// No entropy source: fall back to the clock; uniqueness within
		// a process still holds well enough for tests and sims.
		return uint64(time.Now().UnixNano()) | 1
	}
	return binary.LittleEndian.Uint64(b[:]) | 1
}

// isOverload reports the in-band status of a call the server shed
// under admission control.
func isOverload(err error) bool {
	var ce cuda.Error
	return errors.As(err, &ce) && ce == cuda.ErrorServerOverloaded
}

// An OverloadError is an admission-control shed annotated with the
// server's advertised retry hint. It unwraps to
// cuda.ErrorServerOverloaded, so every existing errors.As-based
// overload check (isOverload, the fleet's shed detection) sees it
// unchanged; consumers that can use the hint — the fleet's shed
// cooldown — extract it with errors.As on *OverloadError.
type OverloadError struct {
	Hint time.Duration
}

func (e *OverloadError) Error() string {
	if e.Hint > 0 {
		return fmt.Sprintf("%v (retry after %v)", cuda.ErrorServerOverloaded, e.Hint)
	}
	return cuda.ErrorServerOverloaded.Error()
}

// Unwrap exposes the in-band overload status for errors.As/Is.
func (e *OverloadError) Unwrap() error { return cuda.ErrorServerOverloaded }

// dialOnce opens one transport and client, learns the server epoch,
// and attaches the session's lease. fresh reports that the server
// granted a brand-new lease — our handles are gone (expired lease or
// restarted server) and the caller must replay. With an EndpointDialer
// configured, the attempt's outcome — success or any failure,
// including an in-band overload shed of the attach — is reported back
// through Result so the picker can route around the endpoint.
func (s *Session) dialOnce() (c *Client, epoch uint64, fresh bool, err error) {
	s.statmu.Lock()
	s.sstats.DialAttempts++
	s.statmu.Unlock()
	var conn io.ReadWriteCloser
	var endpoint string
	if s.opts.Dialer != nil {
		conn, endpoint, err = s.opts.Dialer.DialEndpoint()
	} else {
		conn, err = s.opts.Redial()
	}
	report := func(err error) {
		if s.opts.Dialer != nil {
			s.opts.Dialer.Result(endpoint, err)
		}
	}
	if err != nil {
		report(err)
		return nil, 0, false, err
	}
	c, err = Connect(conn, s.opts.Options)
	if err != nil {
		conn.Close()
		report(err)
		return nil, 0, false, err
	}
	epoch, err = c.gen.SrvGetEpoch()
	if err != nil {
		if oncrpc.IsTransportError(err) {
			c.Close()
			report(err)
			return nil, 0, false, err
		}
		// Pre-epoch server: recovery still works, but every reconnect
		// must assume a restart and replay.
		epoch = 0
	}
	// Lease handshake. A governed server grants or re-binds the lease
	// for this session's nonce; Fresh tells us whether our server-side
	// handles survived.
	info, aerr := c.Attach(s.nonce)
	switch {
	case aerr == nil:
		fresh = info.Fresh != 0
	case oncrpc.IsTransportError(aerr):
		c.Close()
		report(aerr)
		return nil, 0, false, aerr
	case isOverload(aerr):
		// Admission control shed the attach: capture the server's
		// backpressure hint for recover()'s next sleep and fail the
		// dial so it backs off and retries. The hint rides the error as
		// an OverloadError so the endpoint picker can size its shed
		// cooldown from the server's own operating point.
		s.hint = c.TakeRetryHint()
		s.statmu.Lock()
		s.sstats.Overloads++
		s.statmu.Unlock()
		c.Close()
		werr := &OverloadError{Hint: s.hint}
		report(werr)
		return nil, 0, false, werr
	default:
		// Pre-lease server (RPC-level "procedure unavailable"): run
		// ungoverned; the epoch comparison alone decides replays.
	}
	s.endpoint = endpoint
	report(nil)
	return c, epoch, fresh, nil
}

// Endpoint reports the name of the endpoint the session most recently
// connected to, as chosen by SessionOptions.Dialer; empty for plain
// Redial sessions.
func (s *Session) Endpoint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.endpoint
}

// SimNow returns the virtual time of the session's simulated network
// path, or zero without simulation (Options.Clock nil). The clock is
// shared across reconnects, so simulated cost accumulates across the
// whole session lifetime.
func (s *Session) SimNow() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c == nil {
		return 0
	}
	return s.c.SimNow()
}

// Transfer reports the effective bulk-transfer method negotiated on
// the session's current connection. Like Client.Transfer it reflects
// what the server accepted, not what was requested, and it can change
// across reconnects (each recovery renegotiates against the member it
// lands on). Disconnected sessions report TransferRPCArgs.
func (s *Session) Transfer() TransferMethod {
	s.mu.Lock()
	c := s.c
	s.mu.Unlock()
	if c == nil {
		return TransferRPCArgs
	}
	return c.Transfer()
}

// Stats returns the underlying client's transfer counters. Counters
// reset on reconnect (they belong to one connection); SessionStats
// records recovery activity across the whole session.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	c := s.c
	s.mu.Unlock()
	if c == nil {
		return Stats{}
	}
	return c.Stats()
}

// SessionStats returns the recovery counters.
func (s *Session) SessionStats() SessionStats {
	s.statmu.Lock()
	defer s.statmu.Unlock()
	return s.sstats
}

// Close flushes any queued batched calls (best effort), releases the
// session's lease, and shuts the session down. The lease release
// (SRV_DETACH) is best-effort but insistent: if the transport is
// already down — or dies under the detach itself — Close makes one
// fresh dial purely to send the detach, so a clean shutdown reclaims
// server-side resources immediately instead of leaking the lease
// until its TTL expires. Only when that dial also fails (server
// unreachable) does reclamation fall back to the server's TTL sweeper
// (or, for an ungoverned server, the connection-end cleanup).
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.flushBatchLocked()
	if s.batchTimer != nil {
		s.batchTimer.Stop()
		s.batchTimer = nil
	}
	s.closed = true
	var err error
	if s.c != nil {
		derr := s.c.Detach()
		err = s.c.Close()
		s.c = nil
		if !oncrpc.IsTransportError(derr) {
			// Detach reached the server (or was answered in-band by a
			// pre-lease server): the lease is gone, nothing to retry.
			return err
		}
	}
	// No usable transport carried the detach. One fresh dial — no
	// backoff loop, no replay — re-binds the lease for our nonce and
	// releases it.
	if c, _, _, derr := s.dialOnce(); derr == nil {
		_ = c.Detach()
		c.Close()
	}
	return err
}

// Renew sends an explicit lease heartbeat (SRV_RENEW), keeping the
// session's server-side resources alive across idle stretches longer
// than the lease TTL. Ordinary calls renew implicitly.
func (s *Session) Renew() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return err
	}
	return s.do(func(c *Client) error { return c.Renew() })
}

// backoff returns the jittered delay before reconnect attempt i
// (0-based): base*2^i capped at max, scaled into [50%, 100%].
func (s *Session) backoff(i int) time.Duration {
	d := s.opts.BackoffBase << uint(i)
	if d <= 0 || d > s.opts.BackoffMax {
		d = s.opts.BackoffMax
	}
	return d/2 + time.Duration(s.rng.Int63n(int64(d/2)+1))
}

// recover reconnects after a transport failure, replaying state if the
// server restarted. Called with s.mu held. It retries up to
// MaxAttempts times with exponential backoff before giving up.
func (s *Session) recover() error {
	start := time.Now()
	if s.c != nil {
		s.c.Close() // tear down the dead transport and its readLoop
		s.c = nil
	}
	var lastErr error
	for i := 0; i < s.opts.MaxAttempts; i++ {
		if i > 0 || lastErr != nil {
			d := s.backoff(i)
			// A server that shed us sent how long to stay away; honor
			// the longer of its hint and our own backoff.
			if s.hint > d {
				d = s.hint
			}
			s.hint = 0
			s.opts.Sleep(d)
		}
		c, epoch, fresh, err := s.dialOnce()
		if err != nil {
			lastErr = err
			continue
		}
		replayed := false
		if fresh || epoch == 0 || s.epoch == 0 || epoch != s.epoch {
			// Restarted (or unidentifiable) server, or a fresh lease
			// after ours expired: all our server-side state is gone.
			// Rebuild it.
			if err := s.replay(c); err != nil {
				c.Close()
				lastErr = err
				continue
			}
			replayed = true
		}
		s.c, s.epoch = c, epoch
		s.statmu.Lock()
		s.sstats.Reconnects++
		if replayed {
			s.sstats.Replays++
		}
		s.sstats.RecoveryTime += time.Since(start)
		s.statmu.Unlock()
		return nil
	}
	s.statmu.Lock()
	s.sstats.RecoveryTime += time.Since(start)
	s.statmu.Unlock()
	if lastErr == nil {
		lastErr = errors.New("no attempts made")
	}
	// Both errors join the chain: callers match ErrGiveUp to detect
	// exhaustion and errors.As the cause (e.g. ErrorServerOverloaded).
	return fmt.Errorf("%w after %d attempts: %w", ErrGiveUp, s.opts.MaxAttempts, lastErr)
}

// replay rebuilds the session's server-side state on a fresh server
// instance, device by device. Resources were created under whichever
// device was current at cudaSetDevice time, server checkpoints are
// keyed per device, and a restarted server's memory ops act on ITS
// current device — with address arenas that overlap across devices —
// so the replay groups modules, functions, globals, allocations,
// streams, and events by their recorded device and rebuilds each group
// under an explicit SetDevice bracket. The application's last device
// selection is re-selected at the end.
func (s *Session) replay(c *Client) error {
	devs := s.replayDevsLocked()
	anyRestored := false
	for _, dev := range devs {
		if err := c.SetDevice(dev); err != nil {
			return fmt.Errorf("replay: set device %d: %w", dev, err)
		}
		// Ask for this device's checkpointed contents first: restore
		// replaces the whole memory space, so it must precede any
		// reallocation. A server with no checkpoint answers in-band and
		// we continue without contents.
		restored := false
		if !s.opts.NoRestore {
			if err := c.Restore(); err == nil {
				restored = true
				anyRestored = true
			} else if oncrpc.IsTransportError(err) {
				return err
			}
		}
		// Reload this device's modules; function and global handles hang
		// off them.
		for _, m := range s.modules {
			if m.dev != dev {
				continue
			}
			srv, err := c.ModuleLoad(m.image)
			if err != nil {
				return fmt.Errorf("replay: module load: %w", err)
			}
			m.srv = srv
		}
		for _, f := range s.funcs {
			m, ok := s.modules[f.mod]
			if !ok || m.dev != dev {
				continue
			}
			srv, err := c.ModuleGetFunction(m.srv, f.name)
			if err != nil {
				return fmt.Errorf("replay: function %q: %w", f.name, err)
			}
			f.srv = srv
		}
		for _, g := range s.globals {
			m, ok := s.modules[g.mod]
			if !ok || m.dev != dev {
				continue
			}
			oldSrv := g.srv
			srv, size, err := c.ModuleGetGlobal(m.srv, g.name)
			if err != nil {
				return fmt.Errorf("replay: global %q: %w", g.name, err)
			}
			g.srv, g.size = srv, size
			if restored && oldSrv != 0 && oldSrv != srv {
				// Migrate the checkpointed contents into the fresh global,
				// then drop the checkpoint-era buffer. Best-effort: a
				// global that postdates the checkpoint has no old bytes.
				if err := c.MemcpyDtoD(srv, oldSrv, size); err == nil {
					c.Free(oldSrv)
				}
			}
		}
		// Reallocate device memory under the restored allocator (its bump
		// pointer and free list came back with the snapshot, so fresh
		// allocations never collide with checkpointed ones), then migrate
		// contents out of the checkpoint-era buffers.
		for _, a := range s.allocs {
			if a.dev != dev {
				continue
			}
			oldSrv := a.srv
			srv, err := c.Malloc(a.size)
			if err != nil {
				return fmt.Errorf("replay: malloc %d bytes: %w", a.size, err)
			}
			a.srv = srv
			if restored && oldSrv != 0 {
				if err := c.MemcpyDtoD(srv, oldSrv, a.size); err == nil {
					c.Free(oldSrv)
				}
			}
		}
		for v, st := range s.streams {
			if st.dev != dev {
				continue
			}
			srv, err := c.StreamCreate()
			if err != nil {
				return fmt.Errorf("replay: stream: %w", err)
			}
			s.streams[v] = sessStream{srv: srv, dev: dev}
		}
		for v, ev := range s.events {
			if ev.dev != dev {
				continue
			}
			// Recreated events are unrecorded: timestamps do not survive a
			// server restart.
			srv, err := c.EventCreate()
			if err != nil {
				return fmt.Errorf("replay: event: %w", err)
			}
			s.events[v] = sessEvent{srv: srv, dev: dev}
		}
	}
	if devs[len(devs)-1] != s.dev {
		if err := c.SetDevice(s.dev); err != nil {
			return fmt.Errorf("replay: set device: %w", err)
		}
	}
	if anyRestored {
		s.statmu.Lock()
		s.sstats.Restores++
		s.statmu.Unlock()
	}
	// A replay during a migration pre-copy invalidates every chunk
	// already shipped: the restored contents may predate them, and the
	// server pointers changed. The next pass re-ships everything.
	s.markAllDirtyLocked()
	return nil
}

// replayDevsLocked returns the sorted set of devices the session's
// resources were created on, always including the application's
// current selection. Called with s.mu held.
func (s *Session) replayDevsLocked() []int {
	seen := map[int]bool{s.dev: true}
	for _, m := range s.modules {
		seen[m.dev] = true
	}
	for _, a := range s.allocs {
		seen[a.dev] = true
	}
	for _, st := range s.streams {
		seen[st.dev] = true
	}
	for _, ev := range s.events {
		seen[ev.dev] = true
	}
	devs := make([]int, 0, len(seen))
	for d := range seen {
		devs = append(devs, d)
	}
	sort.Ints(devs)
	return devs
}

// do runs one client operation, transparently recovering from
// transport failures. Called with s.mu held by the public methods.
func (s *Session) do(op func(c *Client) error) error {
	if s.closed {
		return ErrSessionClosed
	}
	// With an adaptive window configured, every operation holds one
	// window slot for its whole lifetime — including retries and
	// recovery — so total in-flight work against the server is bounded
	// by the window, and the controller sees the concurrency level each
	// latency sample was taken at.
	w := s.opts.Window
	var rif int
	if w != nil {
		rif = w.Acquire()
		defer w.Release()
	}
	return s.doRetry(op, w, rif)
}

// doQuiet runs one client operation with the same retry and recovery
// behavior as do, but outside the adaptive window: it neither waits
// for a slot nor records latency samples. Migration's drain, pre-copy
// and cutover traffic runs here — the artificial quiesce latency
// spike must not collapse the shared window to Min, exactly as shed
// replies are excluded from sampling. Called with s.mu held.
func (s *Session) doQuiet(op func(c *Client) error) error {
	if s.closed {
		return ErrSessionClosed
	}
	return s.doRetry(op, nil, 0)
}

// doRetry is the shared retry loop behind do and doQuiet. A nil
// window disables both backpressure feedback and latency sampling.
func (s *Session) doRetry(op func(c *Client) error, w *tune.Window, rif int) error {
	shed := 0
	for {
		if s.c == nil {
			if err := s.recover(); err != nil {
				return err
			}
		}
		var t0 time.Time
		if w != nil {
			t0 = time.Now()
		}
		err := op(s.c)
		if isOverload(err) {
			// The server shed this call under admission control.
			// Governance degrades to queueing, not failure: back off on
			// the server's hint (or our own jitter) and retry, up to
			// the session's attempt budget. A shed reply returns fast,
			// so it must not be recorded as a latency sample — it feeds
			// the window as explicit backpressure instead.
			if w != nil {
				w.Backpressure()
			}
			shed++
			s.statmu.Lock()
			s.sstats.Overloads++
			s.statmu.Unlock()
			if shed >= s.opts.MaxAttempts {
				return err
			}
			d := s.c.TakeRetryHint()
			if d <= 0 {
				d = s.backoff(shed - 1)
			}
			s.opts.Sleep(d)
			continue
		}
		// Bulk-transport carrier faults (a dead data channel, shm
		// ring, or RDMA queue pair) are recoverable the same way RPC
		// transport errors are: reconnecting renegotiates the method
		// and reopens the carrier, and the datapath op is idempotent.
		if !oncrpc.IsTransportError(err) && !errors.Is(err, ErrCarrier) {
			if w != nil {
				w.Observe(rif, time.Since(t0))
			}
			return err
		}
		if rerr := s.recover(); rerr != nil {
			return fmt.Errorf("%w (while recovering from: %w)", rerr, err)
		}
	}
}

// ---- batched execution ----

// batching reports whether the session queues asynchronous calls.
func (s *Session) batching() bool { return s.batchMaxN > 0 }

// enqueueLocked appends one virtual-terms entry and flushes when a
// threshold is reached. The payload (launch args or htod bytes) is
// copied into the queue slot rather than captured by the caller:
// flushed slots keep their payload buffers, so once the queue has
// reached its high-water mark a steady-state decode loop issuing
// thousands of tiny launches enqueues with zero allocations. op.data
// must be nil; the slot's recycled buffer replaces it. Called with
// s.mu held.
func (s *Session) enqueueLocked(op sessBatchOp, payload []byte) error {
	if s.closed {
		return ErrSessionClosed
	}
	// Flush before appending when this entry would push the queue past
	// the byte threshold. Appending first and checking after (the old
	// order) shipped batches above batchMaxBytes by up to one whole
	// entry. An entry larger than the threshold on its own still ships
	// alone — it cannot be split — but never atop queued entries.
	if len(s.batchq) > 0 && s.batchBytes+len(payload) > s.batchMaxBytes {
		if err := s.flushBatchLocked(); err != nil {
			return err
		}
	}
	if n := len(s.batchq); n < cap(s.batchq) {
		// Recycle the slot a previous flush left behind — flushes reset
		// length, not capacity — including its payload buffer. A flush
		// completes synchronously before its slots come back, so the
		// buffer is never still referenced.
		s.batchq = s.batchq[:n+1]
		slot := &s.batchq[n]
		buf := slot.data
		*slot = op
		slot.data = append(buf[:0], payload...)
	} else {
		op.data = append([]byte(nil), payload...)
		s.batchq = append(s.batchq, op)
	}
	s.batchBytes += len(payload)
	if len(s.batchq) >= s.batchMaxN || s.batchBytes > s.batchMaxBytes {
		return s.flushBatchLocked()
	}
	if s.batchAge > 0 && s.batchTimer == nil {
		s.batchTimer = time.AfterFunc(s.batchAge, func() { s.Flush() })
	}
	return nil
}

// flushBatchLocked translates the queue to server handles and ships
// it as one BATCH_EXEC through do(). Translation happens inside the
// retry closure: when a flush rides through a reconnect-and-replay,
// the retried batch re-translates every entry against the replayed
// mappings (fresh function/stream/event handles, fresh allocations,
// rewritten launch-arg pointers), so the whole batch is replayed
// intact. The record-marked transport guarantees a half-written batch
// never executed, so a retry after a mid-batch drop executes the
// batch exactly once. Called with s.mu held.
func (s *Session) flushBatchLocked() error {
	if len(s.batchq) == 0 {
		return nil
	}
	if s.batchTimer != nil {
		s.batchTimer.Stop()
		s.batchTimer = nil
	}
	ops := s.batchq
	flushBytes := s.batchBytes
	var t0 time.Time
	if s.coalescer != nil {
		t0 = time.Now()
	}
	// A migration drain flushes outside the adaptive window (doQuiet):
	// the quiesce runs with s.mu held for the whole cutover, so gating
	// it on a window shared with other sessions would stretch the
	// stop-the-world pause, and its latency is not a signal the window
	// controller should learn from.
	doer := s.do
	if s.quiescing {
		doer = s.doQuiet
	}
	err := doer(func(c *Client) error {
		entries := s.wireBuf[:0]
		arena := s.argArena[:0]
		for i := range ops {
			op := &ops[i]
			e := BatchEntry{Op: op.op}
			switch op.op {
			case BatchOpLaunch:
				e.Handle = uint64(op.fn.srv)
				e.Stream = uint64(s.stream(op.stream))
				e.Value = op.shared
				e.GridX, e.GridY, e.GridZ = op.grid.X, op.grid.Y, op.grid.Z
				e.BlockX, e.BlockY, e.BlockZ = op.block.X, op.block.Y, op.block.Z
				arena, e.Data = s.rewriteArgsInto(arena, op.fn, op.data)
			case BatchOpMemcpyHtod:
				e.Handle = uint64(s.translate(op.ptr))
				e.Stream = uint64(s.stream(op.stream))
				e.Data = op.data
			case BatchOpMemset:
				e.Handle = uint64(s.translate(op.ptr))
				e.Value = uint32(op.val)
				e.N = op.n
			case BatchOpEventRecord:
				e.Handle = uint64(s.event(op.event))
				e.Stream = uint64(s.stream(op.stream))
			case BatchOpStreamSync:
				e.Stream = uint64(s.stream(op.stream))
			}
			entries = append(entries, e)
		}
		s.wireBuf = entries
		s.argArena = arena
		sts, err := c.BatchExec(entries)
		if err != nil {
			return err
		}
		if len(sts) > 0 {
			// A governed server sheds a batch all-or-nothing: every
			// status is the overload code and nothing executed. Surface
			// that to do() as a retryable overload instead of deferring
			// per-entry errors — the retried batch re-translates and
			// runs intact.
			allShed := true
			for _, st := range sts {
				if st != overloadCode {
					allShed = false
					break
				}
			}
			if allShed {
				return cuda.ErrorServerOverloaded
			}
		}
		if s.batchDeferred == nil {
			for _, st := range sts {
				if st != 0 {
					s.batchDeferred = cuda.Error(st)
					break
				}
			}
		}
		return nil
	})
	if s.coalescer != nil && err == nil {
		// Feed the tuner the whole flush — queue depth, payload, and
		// end-to-end latency including any retries — and adopt its
		// updated thresholds for the next batch.
		s.batchMaxN, s.batchMaxBytes = s.coalescer.OnFlush(len(ops), flushBytes, time.Since(t0))
	}
	if s.trackDirty {
		// Batched writes dirty their chunks at flush time — the moment
		// the write actually executed server-side — not at enqueue.
		// Marked even on error: a failed batch may have partially
		// executed, and a spurious re-ship is harmless.
		for i := range ops {
			op := &ops[i]
			switch op.op {
			case BatchOpLaunch:
				s.markLaunchDirtyLocked(op.fn, op.data)
			case BatchOpMemcpyHtod:
				s.markDirtyLocked(op.ptr, uint64(len(op.data)))
			case BatchOpMemset:
				s.markDirtyLocked(op.ptr, op.n)
			}
		}
	}
	s.batchq = s.batchq[:0]
	s.batchBytes = 0
	return err
}

// takeDeferredLocked reports and clears the pending batch error at a
// sync point. Called with s.mu held.
func (s *Session) takeDeferredLocked() error {
	err := s.batchDeferred
	s.batchDeferred = nil
	return err
}

// Flush sends any queued batched calls now (no-op when batching is
// off or the queue is empty). In-band per-entry failures surface at
// the next sync point, not here.
func (s *Session) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	return s.flushBatchLocked()
}

// MemcpyHtoDAsync implements cudaMemcpyAsync(HostToDevice): the
// payload is captured (the caller may reuse data immediately) and
// queued under batching, or copied synchronously without it.
func (s *Session) MemcpyHtoDAsync(dst gpu.Ptr, data []byte, st cuda.Stream) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.batching() {
		return s.enqueueLocked(sessBatchOp{
			op:     BatchOpMemcpyHtod,
			ptr:    dst,
			stream: st,
		}, data)
	}
	s.markDirtyLocked(dst, uint64(len(data)))
	return s.do(func(c *Client) error { return c.MemcpyHtoD(s.translate(dst), data) })
}

// ---- virtual handle plumbing ----

func (s *Session) newVHandle() uint64 {
	s.nextV++
	return s.nextV
}

// vPtrFor reserves a stable virtual range of the given size.
func (s *Session) newVPtr(size uint64) gpu.Ptr {
	p := s.nextVPtr
	s.nextVPtr += gpu.Ptr(size) + vPtrGuard
	return p
}

// translate maps a virtual device pointer (possibly interior) to the
// current server pointer. Null passes through; unknown pointers pass
// through untranslated so the server rejects them with its own error.
func (s *Session) translate(p gpu.Ptr) gpu.Ptr {
	if p == 0 {
		return 0
	}
	for v, a := range s.allocs {
		if p >= v && p < v+gpu.Ptr(a.size) {
			return a.srv + (p - v)
		}
	}
	for v, g := range s.globals {
		if p >= v && p < v+gpu.Ptr(g.size) {
			return g.srv + (p - v)
		}
	}
	return p
}

// ---- dirty-chunk tracking (live migration, migrate.go) ----

// dirtyWords is the bitset length (in uint64 words) covering size
// bytes of device state at migrateChunk granularity.
func dirtyWords(size uint64) int {
	chunks := (size + migrateChunk - 1) / migrateChunk
	return int((chunks + 63) / 64)
}

// markRange sets the dirty bits covering [off, off+n) of a range of
// size bytes, allocating the bitset lazily on first mark.
func markRange(dirty []uint64, size, off, n uint64) []uint64 {
	if n == 0 || off >= size {
		return dirty
	}
	if dirty == nil {
		dirty = make([]uint64, dirtyWords(size))
	}
	end := off + n
	if end > size {
		end = size
	}
	for c := off / migrateChunk; c*migrateChunk < end; c++ {
		dirty[c/64] |= 1 << (c % 64)
	}
	return dirty
}

// markDirtyLocked records a device write of n bytes at virtual
// pointer p (possibly interior). Marking is conservative: it happens
// whether or not the write ultimately succeeds, and under batching it
// happens at flush time — marking at enqueue would let a pre-copy
// pass clear the bit and ship the chunk before the queued write
// executed, losing the update. No-op unless a migration is tracking
// writes. Called with s.mu held.
func (s *Session) markDirtyLocked(p gpu.Ptr, n uint64) {
	if !s.trackDirty || p == 0 {
		return
	}
	for v, a := range s.allocs {
		if p >= v && p < v+gpu.Ptr(a.size) {
			a.dirty = markRange(a.dirty, a.size, uint64(p-v), n)
			return
		}
	}
	for v, g := range s.globals {
		if p >= v && p < v+gpu.Ptr(g.size) {
			g.dirty = markRange(g.dirty, g.size, uint64(p-v), n)
			return
		}
	}
}

// markLaunchDirtyLocked conservatively marks everything a kernel
// launch can reach: each pointer parameter dirties its whole
// containing allocation or global, since the kernel may write any
// byte of it. Without parameter metadata the kernel could write
// anything, so everything is marked. Called with s.mu held.
func (s *Session) markLaunchDirtyLocked(fn *sessFunc, args []byte) {
	if !s.trackDirty {
		return
	}
	m, ok := s.modules[fn.mod]
	if !ok || m.meta == nil {
		s.markAllDirtyLocked()
		return
	}
	k, ok := m.meta.Kernel(fn.name)
	if !ok {
		s.markAllDirtyLocked()
		return
	}
	for _, p := range k.Params {
		if p.Kind != cubin.ParamPointer || p.Size != 8 {
			continue
		}
		end := int(p.Offset) + 8
		if end > len(args) {
			continue
		}
		vp := gpu.Ptr(leU64(args[p.Offset:end]))
		if vp == 0 {
			continue
		}
		for v, a := range s.allocs {
			if vp >= v && vp < v+gpu.Ptr(a.size) {
				a.dirty = markRange(a.dirty, a.size, 0, a.size)
			}
		}
		for v, g := range s.globals {
			if vp >= v && vp < v+gpu.Ptr(g.size) {
				g.dirty = markRange(g.dirty, g.size, 0, g.size)
			}
		}
	}
}

// markAllDirtyLocked marks every allocation and global fully dirty —
// used when contents may have changed wholesale (a replay onto a
// restarted server, a checkpoint restore) while a migration's
// pre-copy is in flight. Called with s.mu held.
func (s *Session) markAllDirtyLocked() {
	if !s.trackDirty {
		return
	}
	for _, a := range s.allocs {
		a.dirty = markRange(a.dirty, a.size, 0, a.size)
	}
	for _, g := range s.globals {
		g.dirty = markRange(g.dirty, g.size, 0, g.size)
	}
}

// clearDirtyLocked drops every dirty bitset. Called with s.mu held.
func (s *Session) clearDirtyLocked() {
	for _, a := range s.allocs {
		a.dirty = nil
	}
	for _, g := range s.globals {
		g.dirty = nil
	}
}

// quiesceLocked brings the session to a quiescent point: every queued
// batched call is flushed (and therefore executed server-side) before
// the caller snapshots or migrates state. Checkpoint and migration
// share this gate, so neither can observe queued-but-unflushed
// entries. Called with s.mu held.
func (s *Session) quiesceLocked() error { return s.flushBatchLocked() }

// ---- CUDA surface ----

// Ping issues the null procedure.
func (s *Session) Ping() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return err
	}
	return s.do(func(c *Client) error { return c.Ping() })
}

// GetDeviceCount implements cudaGetDeviceCount.
func (s *Session) GetDeviceCount() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return 0, err
	}
	var n int
	err := s.do(func(c *Client) (e error) { n, e = c.GetDeviceCount(); return })
	return n, err
}

// GetDeviceProperties implements cudaGetDeviceProperties.
func (s *Session) GetDeviceProperties(dev int) (cuda.DeviceProp, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return cuda.DeviceProp{}, err
	}
	var p cuda.DeviceProp
	err := s.do(func(c *Client) (e error) { p, e = c.GetDeviceProperties(dev); return })
	return p, err
}

// SetDevice implements cudaSetDevice; the selection is replayed on
// recovery.
func (s *Session) SetDevice(dev int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return err
	}
	err := s.do(func(c *Client) error { return c.SetDevice(dev) })
	if err == nil {
		s.dev = dev
	}
	return err
}

// GetDevice implements cudaGetDevice.
func (s *Session) GetDevice() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return 0, err
	}
	var dev int
	err := s.do(func(c *Client) (e error) { dev, e = c.GetDevice(); return })
	return dev, err
}

// Malloc implements cudaMalloc, returning a stable virtual pointer.
func (s *Session) Malloc(size uint64) (gpu.Ptr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return 0, err
	}
	var srv gpu.Ptr
	err := s.do(func(c *Client) (e error) { srv, e = c.Malloc(size); return })
	if err != nil {
		return 0, err
	}
	v := s.newVPtr(size)
	a := &sessAlloc{size: size, srv: srv, dev: s.dev}
	if s.trackDirty {
		// Born mid-migration: the cutover reconcile stages it on the
		// target, and the dirty bits make the delta pass ship its
		// contents.
		a.dirty = markRange(a.dirty, size, 0, size)
	}
	s.allocs[v] = a
	return v, nil
}

// Free implements cudaFree. Queued work may reference the
// allocation, so the batch flushes first.
func (s *Session) Free(p gpu.Ptr) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return err
	}
	a, ok := s.allocs[p]
	if !ok {
		// Not session-managed (null or stale): forward for the
		// server's own verdict.
		return s.do(func(c *Client) error { return c.Free(s.translate(p)) })
	}
	err := s.do(func(c *Client) error { return c.Free(a.srv) })
	if err == nil {
		delete(s.allocs, p)
	}
	return err
}

// MemcpyHtoD implements cudaMemcpy(HostToDevice) — synchronous, so
// queued work flushes first to preserve ordering.
func (s *Session) MemcpyHtoD(dst gpu.Ptr, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return err
	}
	s.markDirtyLocked(dst, uint64(len(data)))
	return s.do(func(c *Client) error { return c.MemcpyHtoD(s.translate(dst), data) })
}

// MemcpyDtoH implements cudaMemcpy(DeviceToHost). It is a sync point:
// the batch flushes first and a deferred batch error surfaces here.
func (s *Session) MemcpyDtoH(src gpu.Ptr, n uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return nil, err
	}
	var out []byte
	err := s.do(func(c *Client) (e error) { out, e = c.MemcpyDtoH(s.translate(src), n); return })
	if d := s.takeDeferredLocked(); d != nil {
		return nil, d
	}
	return out, err
}

// MemcpyDtoD implements cudaMemcpy(DeviceToDevice).
func (s *Session) MemcpyDtoD(dst, src gpu.Ptr, n uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return err
	}
	s.markDirtyLocked(dst, n)
	return s.do(func(c *Client) error { return c.MemcpyDtoD(s.translate(dst), s.translate(src), n) })
}

// Memset implements cudaMemset, queued in virtual terms under
// batching (the destination translates at flush time).
func (s *Session) Memset(p gpu.Ptr, value byte, n uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.batching() {
		return s.enqueueLocked(sessBatchOp{op: BatchOpMemset, ptr: p, val: value, n: n}, nil)
	}
	s.markDirtyLocked(p, n)
	return s.do(func(c *Client) error { return c.Memset(s.translate(p), value, n) })
}

// MemGetInfo implements cudaMemGetInfo.
func (s *Session) MemGetInfo() (free, total uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return 0, 0, err
	}
	err = s.do(func(c *Client) (e error) { free, total, e = c.MemGetInfo(); return })
	return free, total, err
}

// DeviceSynchronize implements cudaDeviceSynchronize — the primary
// sync point: the batch flushes and a deferred batch error is
// reported here once, like CUDA's async error model.
func (s *Session) DeviceSynchronize() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return err
	}
	err := s.do(func(c *Client) error { return c.DeviceSynchronize() })
	if d := s.takeDeferredLocked(); d != nil {
		return d
	}
	return err
}

// StreamCreate implements cudaStreamCreate with a stable virtual
// handle.
func (s *Session) StreamCreate() (cuda.Stream, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return 0, err
	}
	var srv cuda.Stream
	err := s.do(func(c *Client) (e error) { srv, e = c.StreamCreate(); return })
	if err != nil {
		return 0, err
	}
	v := s.newVHandle()
	s.streams[v] = sessStream{srv: srv, dev: s.dev}
	return cuda.Stream(v), nil
}

// stream maps a virtual stream handle (0 = default stream passes
// through).
func (s *Session) stream(v cuda.Stream) cuda.Stream {
	if v == 0 {
		return 0
	}
	if st, ok := s.streams[uint64(v)]; ok {
		return st.srv
	}
	return v
}

// StreamDestroy implements cudaStreamDestroy. Queued work may target
// the stream, so the batch flushes first.
func (s *Session) StreamDestroy(v cuda.Stream) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return err
	}
	err := s.do(func(c *Client) error { return c.StreamDestroy(s.stream(v)) })
	if err == nil {
		delete(s.streams, uint64(v))
	}
	return err
}

// StreamSynchronize implements cudaStreamSynchronize; under batching
// it queues as an ordering marker (see Client.StreamSynchronize).
func (s *Session) StreamSynchronize(v cuda.Stream) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.batching() {
		return s.enqueueLocked(sessBatchOp{op: BatchOpStreamSync, stream: v}, nil)
	}
	return s.do(func(c *Client) error { return c.StreamSynchronize(s.stream(v)) })
}

// EventCreate implements cudaEventCreate with a stable virtual handle.
func (s *Session) EventCreate() (cuda.Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return 0, err
	}
	var srv cuda.Event
	err := s.do(func(c *Client) (e error) { srv, e = c.EventCreate(); return })
	if err != nil {
		return 0, err
	}
	v := s.newVHandle()
	s.events[v] = sessEvent{srv: srv, dev: s.dev}
	return cuda.Event(v), nil
}

func (s *Session) event(v cuda.Event) cuda.Event {
	if ev, ok := s.events[uint64(v)]; ok {
		return ev.srv
	}
	return v
}

// EventRecord implements cudaEventRecord; under batching it queues
// and the virtual event/stream handles translate at flush time.
func (s *Session) EventRecord(ev cuda.Event, st cuda.Stream) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.batching() {
		return s.enqueueLocked(sessBatchOp{op: BatchOpEventRecord, event: ev, stream: st}, nil)
	}
	return s.do(func(c *Client) error { return c.EventRecord(s.event(ev), s.stream(st)) })
}

// EventElapsed implements cudaEventElapsedTime. Timestamps recorded
// before a server restart are lost; elapsed queries across a replay
// report the server's unrecorded-event error. A sync point: queued
// work flushes first and a deferred batch error surfaces here.
func (s *Session) EventElapsed(start, end cuda.Event) (float32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return 0, err
	}
	var ms float32
	err := s.do(func(c *Client) (e error) { ms, e = c.EventElapsed(s.event(start), s.event(end)); return })
	if d := s.takeDeferredLocked(); d != nil {
		return 0, d
	}
	return ms, err
}

// EventDestroy implements cudaEventDestroy.
func (s *Session) EventDestroy(ev cuda.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return err
	}
	err := s.do(func(c *Client) error { return c.EventDestroy(s.event(ev)) })
	if err == nil {
		delete(s.events, uint64(ev))
	}
	return err
}

// ModuleLoad implements cuModuleLoad with a stable virtual handle. The
// image is retained client-side: it is replayed to a restarted server,
// and its cubin metadata locates device-pointer parameters inside
// kernel argument buffers.
func (s *Session) ModuleLoad(image []byte) (cuda.Module, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return 0, err
	}
	var srv cuda.Module
	err := s.do(func(c *Client) (e error) { srv, e = c.ModuleLoad(image); return })
	if err != nil {
		return 0, err
	}
	kept := append([]byte(nil), image...)
	meta, merr := cubin.ExtractMetadata(kept)
	if merr != nil {
		meta = nil // unparseable client-side: launches pass args through
	}
	v := s.newVHandle()
	s.modules[v] = &sessModule{image: kept, meta: meta, srv: srv, dev: s.dev}
	return cuda.Module(v), nil
}

// ModuleUnload implements cuModuleUnload.
func (s *Session) ModuleUnload(v cuda.Module) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return err
	}
	m, ok := s.modules[uint64(v)]
	if !ok {
		return s.do(func(c *Client) error { return c.ModuleUnload(v) })
	}
	err := s.do(func(c *Client) error { return c.ModuleUnload(m.srv) })
	if err == nil {
		delete(s.modules, uint64(v))
		for fv, f := range s.funcs {
			if f.mod == uint64(v) {
				delete(s.funcs, fv)
			}
		}
		for gv, g := range s.globals {
			if g.mod == uint64(v) {
				delete(s.globals, gv)
			}
		}
	}
	return err
}

// ModuleGetFunction implements cuModuleGetFunction with a stable
// virtual handle.
func (s *Session) ModuleGetFunction(v cuda.Module, name string) (cuda.Function, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return 0, err
	}
	m, ok := s.modules[uint64(v)]
	if !ok {
		return 0, cuda.ErrorInvalidHandle
	}
	var srv cuda.Function
	err := s.do(func(c *Client) (e error) { srv, e = c.ModuleGetFunction(m.srv, name); return })
	if err != nil {
		return 0, err
	}
	fv := s.newVHandle()
	s.funcs[fv] = &sessFunc{mod: uint64(v), name: name, srv: srv}
	return cuda.Function(fv), nil
}

// ModuleGetGlobal implements cuModuleGetGlobal, returning a stable
// virtual pointer for the global.
func (s *Session) ModuleGetGlobal(v cuda.Module, name string) (gpu.Ptr, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return 0, 0, err
	}
	m, ok := s.modules[uint64(v)]
	if !ok {
		return 0, 0, cuda.ErrorInvalidHandle
	}
	var (
		srv  gpu.Ptr
		size uint64
	)
	err := s.do(func(c *Client) (e error) { srv, size, e = c.ModuleGetGlobal(m.srv, name); return })
	if err != nil {
		return 0, 0, err
	}
	// The same global resolved twice keeps its virtual address.
	for gv, g := range s.globals {
		if g.mod == uint64(v) && g.name == name {
			g.srv, g.size = srv, size
			return gv, size, nil
		}
	}
	gv := s.newVPtr(size)
	g := &sessGlobal{mod: uint64(v), name: name, size: size, srv: srv}
	if s.trackDirty {
		g.dirty = markRange(g.dirty, size, 0, size)
	}
	s.globals[gv] = g
	return gv, size, nil
}

// LaunchKernel implements cuLaunchKernel. Device-pointer parameters in
// the argument buffer are virtual and rewritten to current server
// pointers using the kernel's cubin parameter layout, so a buffer
// built before a server restart still launches correctly after one.
func (s *Session) LaunchKernel(f cuda.Function, grid, block gpu.Dim3, sharedMem uint32, st cuda.Stream, args []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn, ok := s.funcs[uint64(f)]
	if !ok {
		return cuda.ErrorInvalidDeviceFunction
	}
	if s.batching() {
		// Queued in virtual terms: the function handle and argument
		// buffer translate inside flushBatchLocked's retry closure, so
		// a batch replayed after reconnect re-resolves fresh server
		// handles per entry.
		return s.enqueueLocked(sessBatchOp{
			op: BatchOpLaunch, fn: fn, grid: grid, block: block,
			shared: sharedMem, stream: st,
		}, args)
	}
	s.markLaunchDirtyLocked(fn, args)
	return s.do(func(c *Client) error {
		buf := s.rewriteArgs(fn, args)
		return c.LaunchKernel(fn.srv, grid, block, sharedMem, s.stream(st), buf)
	})
}

// rewriteArgs returns a copy of the argument buffer with virtual
// device pointers translated to current server pointers. Rewriting
// happens inside the retry loop: after a replay the same virtual
// buffer re-translates against the new mappings.
func (s *Session) rewriteArgs(fn *sessFunc, args []byte) []byte {
	_, buf := s.rewriteArgsInto(nil, fn, args)
	return buf
}

// rewriteArgsInto is rewriteArgs against a caller-owned arena: the
// translated copy is appended to arena and the returned slice aliases
// it, so a batch flush rewrites every launch in one reused buffer
// instead of allocating per entry. Slices handed out before an arena
// regrowth stay valid — the old backing array is never written again.
// Buffers needing no rewrite are returned as-is without copying.
func (s *Session) rewriteArgsInto(arena []byte, fn *sessFunc, args []byte) ([]byte, []byte) {
	m, ok := s.modules[fn.mod]
	if !ok || m.meta == nil {
		return arena, args
	}
	k, ok := m.meta.Kernel(fn.name)
	if !ok {
		return arena, args
	}
	start := len(arena)
	arena = append(arena, args...)
	buf := arena[start:]
	for _, p := range k.Params {
		if p.Kind != cubin.ParamPointer || p.Size != 8 {
			continue
		}
		end := int(p.Offset) + 8
		if end > len(buf) {
			continue
		}
		slot := buf[p.Offset:end]
		vp := gpu.Ptr(leU64(slot))
		putLeU64(slot, uint64(s.translate(vp)))
	}
	return arena, buf
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Checkpoint asks the server to capture device state. With a
// checkpoint directory configured server-side, this is what makes
// memory contents survive a server restart. It quiesces first —
// the same flush-then-snapshot gate migration uses — so queued
// batched entries are always part of the checkpoint; the server
// additionally serializes the snapshot against batches in flight on
// other connections (Server.execMu).
func (s *Session) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.quiesceLocked(); err != nil {
		return err
	}
	err := s.do(func(c *Client) error { return c.Checkpoint() })
	if d := s.takeDeferredLocked(); d != nil {
		return d
	}
	return err
}

// Restore asks the server to roll back to the latest checkpoint.
// Session-managed pointers keep working: the snapshot preserves the
// allocator layout, so server pointers are identical after a restore.
func (s *Session) Restore() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBatchLocked(); err != nil {
		return err
	}
	err := s.do(func(c *Client) error { return c.Restore() })
	if err == nil {
		// Rolled-back contents differ from anything a concurrent
		// migration pre-copy already shipped.
		s.markAllDirtyLocked()
	}
	return err
}

// Reconnects reports how many times the session has reconnected.
func (s *Session) Reconnects() uint64 {
	s.statmu.Lock()
	defer s.statmu.Unlock()
	return s.sstats.Reconnects
}
