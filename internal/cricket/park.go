package cricket

// Scale-to-zero, server side. Parking is the fleet's idle deadline
// arriving: the server takes a final checkpoint of every device (the
// same CRAC-style snapshot CKP_CHECKPOINT takes, persisted when a
// checkpoint directory is configured) and then refuses work until
// woken. A parked server models a released instance — in a real
// deployment the process would exit after Park and a fresh one would
// start on wake, restoring from the persisted checkpoints via
// SetCheckpointDir; in-process it simply sheds every governed call so
// clients back off exactly as they would against a saturated server.
//
// Epoch discovery stays answerable while parked, like it does under
// admission control: a prober or recovering client must always be able
// to ask who is there, and learning the epoch does not touch device
// state.

// Park takes a final checkpoint of every device and stops admitting
// calls. Idempotent; the fleet's Pool calls it through the member's
// Park hook once the idle deadline passes.
func (s *Server) Park() error {
	// Exclusive against in-flight batches, like CKP_CHECKPOINT: the
	// final checkpoint must capture whole batches only.
	s.execMu.Lock()
	defer s.execMu.Unlock()
	n, _, _ := s.rt.GetDeviceCount()
	var firstErr error
	for dev := 0; dev < n; dev++ {
		d, err := s.rt.Device(dev)
		if err != nil {
			continue
		}
		snap, _, err := d.Snapshot()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.mu.Lock()
		s.snapshots[dev] = snap
		s.stats.Checkpoints++
		dir := s.ckpDir
		s.mu.Unlock()
		if dir != "" {
			if err := writeCheckpointFile(dir, dev, snap); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if firstErr != nil {
		// An incomplete final checkpoint must not park the server:
		// waking would silently resume from stale or missing state.
		if s.ErrorLog != nil {
			s.ErrorLog.Printf("cricket: park aborted: %v", firstErr)
		}
		return firstErr
	}
	s.mu.Lock()
	if !s.parked {
		s.parked = true
		s.stats.Parks++
	}
	s.mu.Unlock()
	return nil
}

// Wake resumes admitting calls after a Park. Idempotent.
func (s *Server) Wake() {
	s.mu.Lock()
	if s.parked {
		s.parked = false
		s.stats.Wakes++
	}
	s.mu.Unlock()
}

// IsParked reports whether the server is currently parked.
func (s *Server) IsParked() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.parked
}
