package cricket

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"cricket/internal/guest"
	"cricket/internal/netsim"
	"cricket/internal/tune"
)

// migrateTestSession opens a session on e with batching optionally on.
func migrateTestSession(t *testing.T, e *sessEnv, batch int) *Session {
	t.Helper()
	s, err := NewSession(SessionOptions{
		Options: Options{Platform: guest.NativeRust(), Batch: batch},
		Redial:  e.redial,
		Seed:    1,
		Sleep:   func(time.Duration) {},
	})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// A migration between two live servers must carry device memory
// bit-identically, leave the session serving on the target, and point
// later recoveries at the target too.
func TestSessionMigrateBitIdentical(t *testing.T) {
	src := newSessEnv(t, "")
	dst := newSessEnv(t, "")
	s := migrateTestSession(t, src, 0)

	// Device state to carry: a buffer with a recognizable pattern plus
	// a full matmul working set (module, function, three buffers).
	const size = 192 << 10 // 3 chunks, off-by-one-safe: not chunk-aligned below
	p, err := s.Malloc(size + 100)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, size+100)
	for i := range want {
		want[i] = byte(i*131 + i>>8)
	}
	if err := s.MemcpyHtoD(p, want); err != nil {
		t.Fatal(err)
	}
	baseline := matmulWorkload(t, s, nil)

	rep, err := s.MigrateVia("dst", dst.redial)
	if err != nil {
		t.Fatalf("MigrateVia: %v", err)
	}
	if rep.Target != "dst" || rep.Rounds < 1 {
		t.Fatalf("report = %+v, want target dst and >= 1 round", rep)
	}
	if rep.Pause <= 0 {
		t.Fatalf("Pause = %v, want > 0", rep.Pause)
	}
	if got := s.Endpoint(); got != "dst" {
		t.Fatalf("Endpoint() = %q after migration, want dst", got)
	}
	if st := s.SessionStats(); st.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1", st.Migrations)
	}

	// The source must no longer be load-bearing.
	src.kill(true)

	got, err := s.MemcpyDtoH(p, size+100)
	if err != nil {
		t.Fatalf("read after migration: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("migrated buffer is not bit-identical")
	}
	after := matmulWorkload(t, s, nil)
	if !bytes.Equal(after, baseline) {
		t.Fatal("matmul after migration differs from pre-migration run")
	}

	// Recovery after the move must redial the *target* (MigrateVia
	// replaced Redial): sever the target's connections and keep going.
	dst.kill(false)
	got, err = s.MemcpyDtoH(p, size+100)
	if err != nil {
		t.Fatalf("read after post-migration reconnect: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("buffer lost across post-migration reconnect")
	}
}

// With no writes racing the pre-copy, every byte ships while the
// session is live and the stop-the-world delta is empty — the whole
// point of incremental checkpoints.
func TestSessionMigrateDeltaShipsLessThanFull(t *testing.T) {
	src := newSessEnv(t, "")
	dst := newSessEnv(t, "")
	s := migrateTestSession(t, src, 0)

	const size = 1 << 20
	p, err := s.Malloc(size)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := s.MemcpyHtoD(p, data); err != nil {
		t.Fatal(err)
	}

	rep, err := s.MigrateVia("dst", dst.redial)
	if err != nil {
		t.Fatalf("MigrateVia: %v", err)
	}
	if rep.FullBytes < size {
		t.Fatalf("FullBytes = %d, want >= %d", rep.FullBytes, size)
	}
	if rep.PrecopyBytes < size {
		t.Fatalf("PrecopyBytes = %d, want >= %d (full pass ships everything)", rep.PrecopyBytes, size)
	}
	if rep.DeltaBytes != 0 {
		t.Fatalf("DeltaBytes = %d with an idle session, want 0", rep.DeltaBytes)
	}
	got, err := s.MemcpyDtoH(p, size)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("contents differ after migration")
	}
}

// A write that lands between pre-copy rounds must be re-shipped: the
// final state on the target reflects it.
func TestSessionMigrateCarriesWritesAfterCapture(t *testing.T) {
	src := newSessEnv(t, "")
	dst := newSessEnv(t, "")
	s := migrateTestSession(t, src, 0)

	const size = 256 << 10
	p, err := s.Malloc(size)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Memset(p, 0xAA, size); err != nil {
		t.Fatal(err)
	}

	// Race a writer against the migration: it keeps overwriting a
	// window of the buffer (and eventually the final pattern) while
	// pre-copy ships chunks. Clear-before-read guarantees whichever
	// write lands after a chunk was read re-dirties it for the next
	// round or the cutover delta.
	final := make([]byte, size)
	for i := range final {
		final[i] = byte(i*13 + 5)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			_ = s.Memset(p, byte(i), 64<<10)
		}
		_ = s.MemcpyHtoD(p, final)
	}()
	if _, err := s.MigrateVia("dst", dst.redial); err != nil {
		t.Fatalf("MigrateVia: %v", err)
	}
	<-done

	src.kill(true)
	got, err := s.MemcpyDtoH(p, size)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, final) {
		t.Fatal("write racing the migration was lost on the target")
	}
}

// A dead target aborts the migration; the session keeps serving on
// the source, and a later retry against a healthy target succeeds.
func TestSessionMigrateAbortsToSourceOnDeadTarget(t *testing.T) {
	src := newSessEnv(t, "")
	dst := newSessEnv(t, "")
	s := migrateTestSession(t, src, 0)

	p, err := s.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 4096)
	for i := range want {
		want[i] = byte(i * 3)
	}
	if err := s.MemcpyHtoD(p, want); err != nil {
		t.Fatal(err)
	}

	dst.kill(true)
	if _, err := s.MigrateVia("dst", dst.redial); err == nil {
		t.Fatal("MigrateVia to a dead target succeeded")
	}
	if st := s.SessionStats(); st.Migrations != 0 {
		t.Fatalf("Migrations = %d after abort, want 0", st.Migrations)
	}
	// Source must be untouched and fully serving.
	got, err := s.MemcpyDtoH(p, 4096)
	if err != nil {
		t.Fatalf("read on source after abort: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("source corrupted by aborted migration")
	}

	// Retry against the healed target.
	dst.restart()
	if _, err := s.MigrateVia("dst", dst.redial); err != nil {
		t.Fatalf("retry after abort: %v", err)
	}
	src.kill(true)
	got, err = s.MemcpyDtoH(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("contents wrong after post-abort retry migration")
	}
}

// A target connection that dies mid-pre-copy (after staging already
// succeeded) aborts back to the source without corruption — the
// mid-migration kill from the issue's acceptance criteria, at unit
// scale. netsim.FaultConn drops the staging transport partway through
// the bulk ship.
func TestSessionMigrateAbortsOnMidCopyTargetDeath(t *testing.T) {
	src := newSessEnv(t, "")
	dst := newSessEnv(t, "")
	s := migrateTestSession(t, src, 0)

	const size = 1 << 20
	p, err := s.Malloc(size)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, size)
	for i := range want {
		want[i] = byte(i * 11)
	}
	if err := s.MemcpyHtoD(p, want); err != nil {
		t.Fatal(err)
	}

	// Let the handshake and staging through, then drop the connection
	// mid-pre-copy: well past attach+staging RPCs, well short of the
	// 1 MiB bulk ship.
	faulty := func() (io.ReadWriteCloser, error) {
		conn, err := dst.redial()
		if err != nil {
			return nil, err
		}
		return netsim.NewFaultConn(conn, netsim.Fault{AfterBytes: 256 << 10, Kind: netsim.FaultDrop}), nil
	}
	if _, err := s.MigrateVia("dst", faulty); err == nil {
		t.Fatal("MigrateVia with a mid-copy target death succeeded")
	}

	got, err := s.MemcpyDtoH(p, size)
	if err != nil {
		t.Fatalf("read on source after mid-copy abort: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("source corrupted by mid-copy abort")
	}

	// The failed attempt must not wedge the migrating flag: a clean
	// retry succeeds.
	if _, err := s.MigrateVia("dst", dst.redial); err != nil {
		t.Fatalf("retry after mid-copy abort: %v", err)
	}
	src.kill(true)
	got, err = s.MemcpyDtoH(p, size)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("contents wrong after post-abort retry")
	}
}

// Concurrent MigrateTo calls: exactly one wins, the other reports
// ErrMigrating.
func TestSessionMigrateRejectsConcurrentMigration(t *testing.T) {
	src := newSessEnv(t, "")
	dst := newSessEnv(t, "")
	s := migrateTestSession(t, src, 0)

	const size = 2 << 20 // big enough that the first migrate is still running
	p, err := s.Malloc(size)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Memset(p, 1, size); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.MigrateVia("dst", dst.redial)
		}(i)
	}
	wg.Wait()
	var ok, rejected int
	for _, err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrMigrating):
			rejected++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	// Both may succeed serially if the first finished before the
	// second started; what must never happen is both running at once
	// (ErrMigrating is the overlap signal) or any other failure.
	if ok < 1 {
		t.Fatalf("no migration succeeded (ok=%d rejected=%d)", ok, rejected)
	}
}

// Satellite: Session.Checkpoint must flush the queued BATCH_EXEC
// entries before snapshotting — a checkpoint between enqueue and
// flush would miss queued writes and restore a torn state.
func TestSessionCheckpointFlushesBatchQueue(t *testing.T) {
	dir := t.TempDir()
	e := newSessEnv(t, dir)
	s := migrateTestSession(t, e, 64) // large batch: nothing auto-flushes

	p, err := s.Malloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 8192)
	for i := range want {
		want[i] = byte(i * 17)
	}
	// Queued, not flushed: Batch=64 and only a handful of entries.
	if err := s.MemcpyHtoDAsync(p, want, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Memset(p+1024, 0x5C, 512); err != nil {
		t.Fatal(err)
	}
	copy(want[1024:1536], bytes.Repeat([]byte{0x5C}, 512))

	// Checkpoint must see both queued writes.
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	e.restart()
	got, err := s.MemcpyDtoH(p, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("checkpoint missed queued-but-unflushed batch entries")
	}
}

// Satellite: a checkpoint racing another connection's BATCH_EXEC must
// not snapshot between the batch's entries — the server's execMu
// makes each batch atomic against snapshots. Two halves of a buffer
// are always memset to the same value inside one batch; every
// restored snapshot must show them equal.
func TestServerCheckpointAtomicAgainstBatches(t *testing.T) {
	dir := t.TempDir()
	e := newSessEnv(t, dir)
	writer := migrateTestSession(t, e, 2) // exactly one batch per pair
	ckper := migrateTestSession(t, e, 0)

	const half = 64 << 10
	p, err := writer.Malloc(2 * half)
	if err != nil {
		t.Fatal(err)
	}
	if err := writer.Memset(p, 0, 2*half); err != nil {
		t.Fatal(err)
	}
	if err := writer.Flush(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := byte(1); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			// Batch=2: the pair flushes as one BATCH_EXEC.
			if err := writer.Memset(p, v, half); err != nil {
				return
			}
			if err := writer.Memset(p+half, v, half); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		if err := ckper.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if err := writer.Flush(); err != nil {
		t.Fatal(err)
	}

	// Restore the last snapshot and check the invariant. The read goes
	// through the writer: p is its virtual pointer, and its replay
	// restores the persisted snapshot.
	e.restart()
	got, err := writer.MemcpyDtoH(p, 2*half)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:half], got[half:]) {
		t.Fatal("checkpoint bisected a batch: halves differ after restore")
	}
}

// Satellite: the migration drain must not feed its quiesce latency
// into a shared tune.Window — drain traffic is excluded exactly like
// shed replies, so the window neither collapses nor records samples
// it didn't serve.
func TestSessionMigrateDrainDoesNotFeedWindow(t *testing.T) {
	src := newSessEnv(t, "")
	dst := newSessEnv(t, "")
	w := tune.NewWindow(tune.WindowConfig{Min: 1, Max: 16, Initial: 8})
	s, err := NewSession(SessionOptions{
		Options: Options{Platform: guest.NativeRust()},
		Redial:  src.redial,
		Seed:    1,
		Sleep:   func(time.Duration) {},
		Window:  w,
	})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()

	const size = 512 << 10
	p, err := s.Malloc(size)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	if err := s.MemcpyHtoD(p, data); err != nil {
		t.Fatal(err)
	}
	before := w.Stats()
	if before.Samples == 0 {
		t.Fatal("warmup produced no window samples")
	}

	if _, err := s.MigrateVia("dst", dst.redial); err != nil {
		t.Fatalf("MigrateVia: %v", err)
	}

	after := w.Stats()
	if after.Samples != before.Samples {
		t.Fatalf("window samples %d -> %d: migration drain leaked into the controller", before.Samples, after.Samples)
	}
	if after.Window != before.Window {
		t.Fatalf("window %d -> %d across migration, want unchanged", before.Window, after.Window)
	}
	if after.Backoffs != before.Backoffs {
		t.Fatalf("backoffs %d -> %d across migration, want unchanged", before.Backoffs, after.Backoffs)
	}
}
