package cricket

import (
	"testing"
	"time"

	"cricket/internal/guest"
	"cricket/internal/tune"
)

// A session with an adaptive Window must feed server sheds into the
// controller as backpressure (multiplicative decrease) rather than as
// latency samples, and keep serving once the congestion clears.
func TestSessionWindowBackpressureOnOverload(t *testing.T) {
	e := newSessEnv(t, "")
	srv := e.server()
	srv.SetLimits(Limits{MaxInflight: 1, RetryAfter: time.Millisecond})

	w := tune.NewWindow(tune.WindowConfig{Min: 1, Max: 8, Initial: 8})
	s, err := NewSession(SessionOptions{
		Options:     Options{Platform: guest.NativeRust()},
		Redial:      e.redial,
		Seed:        1,
		Sleep:       func(time.Duration) {},
		MaxAttempts: 3,
		Window:      w,
	})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()
	if _, err := s.Malloc(64); err != nil {
		t.Fatalf("Malloc before congestion: %v", err)
	}

	// Occupy the only execution slot directly (the simulated runtime
	// completes real calls instantly, so contention is injected, not
	// raced): every call now sheds until the attempt budget runs out.
	srv.mu.Lock()
	srv.inflight = 1
	srv.mu.Unlock()
	if _, err := s.Malloc(64); !isOverload(err) {
		t.Fatalf("Malloc under congestion = %v, want overload", err)
	}
	st := w.Stats()
	if st.Backoffs < 1 {
		t.Fatalf("Backoffs = %d, want >= 1 (sheds must reach the window)", st.Backoffs)
	}
	if st.Window >= 8 {
		t.Fatalf("window = %d after sheds, want < initial 8", st.Window)
	}
	if st.Inflight != 0 {
		t.Fatalf("inflight = %d after the call returned, want 0 (slot leaked)", st.Inflight)
	}

	srv.mu.Lock()
	srv.inflight = 0
	srv.mu.Unlock()
	before := w.Stats().Samples
	if _, err := s.Malloc(64); err != nil {
		t.Fatalf("Malloc after congestion cleared: %v", err)
	}
	if after := w.Stats().Samples; after <= before {
		t.Fatalf("samples %d -> %d: successful call was not observed", before, after)
	}
}

// A session with a Coalescer must adopt the tuner's thresholds after
// every flush: full cheap batches grow the entry threshold away from
// its initial value, and the session's own limits track the tuner's.
func TestSessionCoalescerAdaptsThresholds(t *testing.T) {
	e := newSessEnv(t, "")
	tuner := tune.NewCoalescer(tune.CoalesceConfig{
		MinN: 2, Initial: 4, MaxN: 64, FlushesPerAdjust: 2,
	})
	s, err := NewSession(SessionOptions{
		Options:   Options{Platform: guest.NativeRust(), Batch: 999, BatchBytes: 1 << 30},
		Redial:    e.redial,
		Seed:      1,
		Sleep:     func(time.Duration) {},
		Coalescer: tuner,
	})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()

	thresholds := func() (n, b int) {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.batchMaxN, s.batchMaxBytes
	}
	// The session must start at the tuner's operating point, not the
	// static Batch/BatchBytes options.
	if n, _ := thresholds(); n != 4 {
		t.Fatalf("initial batchMaxN = %d, want the tuner's 4", n)
	}

	dst, err := s.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 16)
	// Fill batches exactly to the current threshold so every flush is
	// "full" — the signal that the threshold binds and growth pays.
	for i := 0; i < 12; i++ {
		n, _ := thresholds()
		for j := 0; j < n; j++ {
			if err := s.MemcpyHtoDAsync(dst, payload, 0); err != nil {
				t.Fatalf("enqueue: %v", err)
			}
		}
	}
	st := tuner.Stats()
	if st.Grows == 0 {
		t.Fatalf("tuner stats %+v: full cheap batches never grew the threshold", st)
	}
	gotN, gotB := thresholds()
	wantN, wantB := tuner.Thresholds()
	if gotN != wantN || gotB != wantB {
		t.Fatalf("session thresholds (%d, %d) diverge from tuner (%d, %d)",
			gotN, gotB, wantN, wantB)
	}
	if gotN <= 4 {
		t.Fatalf("batchMaxN = %d, want grown above initial 4", gotN)
	}
}
