package serve

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"cricket/internal/cricket"
	"cricket/internal/cuda"
	"cricket/internal/gpu"
	"cricket/internal/guest"
	"cricket/internal/oncrpc"
)

// env is a restartable in-process Cricket server with ndev simulated
// GPUs (the serve-package twin of the cricket package's sessEnv).
type env struct {
	t    *testing.T
	ndev int

	mu    sync.Mutex
	rpc   *oncrpc.Server
	conns []net.Conn
}

func newEnv(t *testing.T, ndev int) *env {
	e := &env{t: t, ndev: ndev}
	e.boot()
	t.Cleanup(func() { e.kill(true) })
	return e
}

func (e *env) boot() {
	devs := make([]*gpu.Device, e.ndev)
	for i := range devs {
		devs[i] = gpu.New(gpu.SpecA100)
	}
	srv := cricket.NewServer(cuda.NewRuntime(nil, devs...))
	rpcSrv := oncrpc.NewServer()
	srv.Attach(rpcSrv)
	e.mu.Lock()
	e.rpc = rpcSrv
	e.mu.Unlock()
}

func (e *env) redial() (io.ReadWriteCloser, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.rpc == nil {
		return nil, errors.New("env: server down")
	}
	cli, srvConn := net.Pipe()
	e.conns = append(e.conns, srvConn)
	go e.rpc.ServeConn(srvConn)
	return cli, nil
}

func (e *env) kill(down bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, c := range e.conns {
		c.Close()
	}
	e.conns = nil
	if down {
		e.rpc = nil
	}
}

func (e *env) restart() {
	e.kill(true)
	e.boot()
}

func newSession(t *testing.T, e *env, batch int) *cricket.Session {
	t.Helper()
	s, err := cricket.NewSession(cricket.SessionOptions{
		Options: cricket.Options{Platform: guest.NativeRust(), Batch: batch},
		Redial:  e.redial,
		Seed:    1,
		Sleep:   func(time.Duration) {},
	})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func newEngine(t *testing.T, e *env, cfg Config) *Engine {
	t.Helper()
	s := newSession(t, e, 32)
	eng, err := New(s, cfg)
	if err != nil {
		t.Fatalf("New engine: %v", err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

func prompt(seed byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = seed + byte(i*7)
	}
	return p
}

func TestEngineServesAndStreams(t *testing.T) {
	e := newEnv(t, 1)
	eng := newEngine(t, e, Config{Slots: 2})

	var streamed []uint32
	resp, err := eng.Do(Request{
		ID: 7, Prompt: prompt(3, 64), MaxTokens: 20,
		OnToken: func(tok uint32) { streamed = append(streamed, tok) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Tokens) != 20 {
		t.Fatalf("got %d tokens, want 20", len(resp.Tokens))
	}
	if len(streamed) != 20 {
		t.Fatalf("streamed %d tokens, want 20", len(streamed))
	}
	for i := range streamed {
		if streamed[i] != resp.Tokens[i] {
			t.Fatalf("streamed[%d] = %d, response has %d", i, streamed[i], resp.Tokens[i])
		}
	}
	if resp.Digest == 0 {
		t.Fatal("no digest")
	}
	if resp.TTFT <= 0 || resp.Total < resp.TTFT {
		t.Fatalf("timing: ttft=%v total=%v", resp.TTFT, resp.Total)
	}
	st := eng.Stats()
	if st.Completed != 1 || st.Launches < 21 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEngineDigestDeterministicAcrossEngines(t *testing.T) {
	req := Request{ID: 1, Prompt: prompt(9, 100), MaxTokens: 32}
	digest := func(cfg Config) uint64 {
		e := newEnv(t, 1)
		eng := newEngine(t, e, cfg)
		resp, err := eng.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Digest
	}
	d1 := digest(Config{Slots: 1})
	d2 := digest(Config{Slots: 4})
	if d1 != d2 {
		t.Fatalf("digest differs across engine configs: %#x vs %#x", d1, d2)
	}
}

// TestEngineMultiReplicaBitIdentical runs the same concurrent request
// set through a single-replica and a two-replica (two-device) engine:
// per-request digests must match bit-for-bit, and the two-replica run
// must actually spread load across both devices.
func TestEngineMultiReplicaBitIdentical(t *testing.T) {
	const reqs = 8
	run := func(ndev, replicas int) (map[uint64]uint64, map[int]int) {
		e := newEnv(t, ndev)
		eng := newEngine(t, e, Config{Replicas: replicas, Slots: 2})
		var wg sync.WaitGroup
		var mu sync.Mutex
		digests := make(map[uint64]uint64)
		placement := make(map[int]int)
		for i := 0; i < reqs; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := eng.Do(Request{
					ID: uint64(i), Prompt: prompt(byte(i), 64+i), MaxTokens: 16 + i,
				})
				if err != nil {
					t.Errorf("req %d: %v", i, err)
					return
				}
				mu.Lock()
				digests[resp.ID] = resp.Digest
				placement[resp.Replica]++
				mu.Unlock()
			}()
		}
		wg.Wait()
		return digests, placement
	}
	single, _ := run(1, 1)
	multi, placement := run(2, 2)
	if len(single) != reqs || len(multi) != reqs {
		t.Fatalf("lost requests: single %d, multi %d", len(single), len(multi))
	}
	for id, d := range single {
		if multi[id] != d {
			t.Fatalf("request %d digest differs: single %#x, multi %#x", id, d, multi[id])
		}
	}
	if len(placement) < 2 {
		t.Fatalf("two-replica run used %d device(s): %v", len(placement), placement)
	}
}

// TestEngineSurvivesServerRestart kills and reboots the server in the
// middle of a decode: the engine must detect the session replay,
// re-upload weights, redo the interrupted round, and deliver the same
// token stream as an undisturbed run.
func TestEngineSurvivesServerRestart(t *testing.T) {
	req := Request{ID: 5, Prompt: prompt(17, 80), MaxTokens: 200}

	base := newEnv(t, 1)
	beng := newEngine(t, base, Config{Slots: 2})
	want, err := beng.Do(req)
	if err != nil {
		t.Fatal(err)
	}

	e := newEnv(t, 1)
	eng := newEngine(t, e, Config{Slots: 2})
	restarted := make(chan struct{})
	var once sync.Once
	r := req
	r.OnToken = func(uint32) {
		once.Do(func() {
			e.restart()
			close(restarted)
		})
	}
	got, err := eng.Do(r)
	if err != nil {
		t.Fatal(err)
	}
	<-restarted
	if got.Digest != want.Digest {
		t.Fatalf("digest after restart %#x, want %#x", got.Digest, want.Digest)
	}
	if len(got.Tokens) != len(want.Tokens) {
		t.Fatalf("token count %d, want %d", len(got.Tokens), len(want.Tokens))
	}
	st := eng.Stats()
	if st.RoundRedos < 1 || st.WeightReloads < 1 {
		t.Fatalf("recovery not observable: %+v", st)
	}
}

// TestEngineMigratesBetweenRounds live-migrates the engine's session
// to a second server at a round boundary via Barrier, mid-request:
// the token stream must continue bit-identically on the target.
func TestEngineMigratesBetweenRounds(t *testing.T) {
	req := Request{ID: 9, Prompt: prompt(29, 96), MaxTokens: 120}

	base := newEnv(t, 1)
	beng := newEngine(t, base, Config{Slots: 2})
	want, err := beng.Do(req)
	if err != nil {
		t.Fatal(err)
	}

	src := newEnv(t, 1)
	dst := newEnv(t, 1)
	s := newSession(t, src, 32)
	eng, err := New(s, Config{Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })

	migrated := make(chan error, 1)
	var once sync.Once
	r := req
	r.OnToken = func(uint32) {
		once.Do(func() {
			go func() {
				migrated <- eng.Barrier(func() error {
					_, err := s.MigrateVia("standby", dst.redial)
					return err
				})
			}()
		})
	}
	got, err := eng.Do(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-migrated; err != nil {
		t.Fatalf("migration: %v", err)
	}
	if got.Digest != want.Digest {
		t.Fatalf("digest after migration %#x, want %#x", got.Digest, want.Digest)
	}
	if st := s.SessionStats(); st.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1", st.Migrations)
	}
}

// TestEngineShedsBatchClassFirst fills the queues behind a slow
// request: batch-class submissions shed once their queue is full
// while latency-class ones ride the doubled queue.
func TestEngineShedsBatchClassFirst(t *testing.T) {
	e := newEnv(t, 1)
	eng := newEngine(t, e, Config{Slots: 1, QueueCap: 2})

	// Occupy the only slot long enough to fill queues behind it; wait
	// for its first token so it is decoding (not still queued) before
	// flooding the queues.
	started := make(chan struct{})
	var once sync.Once
	blocker, err := eng.Submit(Request{
		ID: 1, Prompt: prompt(1, 32), MaxTokens: 400,
		OnToken: func(uint32) { once.Do(func() { close(started) }) },
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	var batchShed, latShed int
	var tickets []*Ticket
	for i := 0; i < 5; i++ {
		_, err := eng.Submit(Request{ID: uint64(100 + i), Prompt: prompt(2, 8), MaxTokens: 1, Class: Batch})
		if errors.Is(err, ErrShed) {
			batchShed++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		tk, err := eng.Submit(Request{ID: uint64(200 + i), Prompt: prompt(3, 8), MaxTokens: 1, Class: Latency})
		if errors.Is(err, ErrShed) {
			latShed++
		} else if err != nil {
			t.Fatal(err)
		} else {
			tickets = append(tickets, tk)
		}
	}
	if batchShed == 0 {
		t.Fatal("no batch-class request shed with a full queue")
	}
	if latShed != 0 {
		t.Fatalf("%d latency-class requests shed while the doubled queue had room", latShed)
	}
	if _, err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Shed[Batch] == 0 || st.Shed[Latency] != 0 {
		t.Fatalf("shed stats = %+v", st.Shed)
	}
}

// TestEngineDropsExpiredQueuedRequests gives a queued request a
// deadline shorter than the blocker ahead of it.
func TestEngineDropsExpiredQueuedRequests(t *testing.T) {
	e := newEnv(t, 1)
	eng := newEngine(t, e, Config{Slots: 1})

	blocker, err := eng.Submit(Request{ID: 1, Prompt: prompt(1, 32), MaxTokens: 500})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := eng.Submit(Request{ID: 2, Prompt: prompt(2, 8), MaxTokens: 1, Deadline: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired request returned %v, want ErrDeadline", err)
	}
	if _, err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", st.Expired)
	}
}

func TestEngineSLOReport(t *testing.T) {
	e := newEnv(t, 1)
	eng := newEngine(t, e, Config{
		Slots: 2,
		SLO: map[Class]SLOBudget{
			Latency: {TTFT: time.Hour, PerToken: time.Hour},
			Batch:   {TTFT: time.Nanosecond, PerToken: time.Nanosecond},
		},
	})
	for _, cl := range []Class{Latency, Batch} {
		if _, err := eng.Do(Request{ID: uint64(cl), Prompt: prompt(5, 16), MaxTokens: 8, Class: cl}); err != nil {
			t.Fatal(err)
		}
	}
	reps := eng.Report()
	if len(reps) != 2 {
		t.Fatalf("%d class reports", len(reps))
	}
	for _, r := range reps {
		if r.TTFT.Count != 1 || r.PerToken.Count != 7 {
			t.Fatalf("%v: ttft count %d, per-token count %d", r.Class, r.TTFT.Count, r.PerToken.Count)
		}
		switch r.Class {
		case Latency:
			if !r.SLOMet {
				t.Fatal("hour-scale budget reported violated")
			}
		case Batch:
			if r.SLOMet {
				t.Fatal("nanosecond budget reported met")
			}
		}
	}
}

func TestEngineRejectsBadRequests(t *testing.T) {
	e := newEnv(t, 1)
	eng := newEngine(t, e, Config{PromptCap: 32})
	if _, err := eng.Submit(Request{Prompt: prompt(1, 64), MaxTokens: 4}); err == nil {
		t.Fatal("oversized prompt accepted")
	}
	if _, err := eng.Submit(Request{Prompt: prompt(1, 8), MaxTokens: 0}); err == nil {
		t.Fatal("zero MaxTokens accepted")
	}
	if _, err := New(newSession(t, e, 0), Config{Replicas: 3}); err == nil {
		t.Fatal("3 replicas accepted on a 1-device server")
	}
}

func TestEngineCloseFailsInFlight(t *testing.T) {
	e := newEnv(t, 1)
	s := newSession(t, e, 32)
	eng, err := New(s, Config{Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := eng.Submit(Request{ID: 1, Prompt: prompt(1, 16), MaxTokens: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("in-flight request returned %v, want ErrClosed", err)
	}
	if _, err := eng.Submit(Request{ID: 2, Prompt: prompt(1, 8), MaxTokens: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
}
