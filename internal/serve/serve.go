// Package serve is an LLM-inference serving engine layered on a
// fault-tolerant cricket.Session. It models the decode-loop traffic
// shape that dominates production GPU serving: per request one large
// prefill launch (prompt upload + attention over device-resident
// weights) followed by thousands of tiny decodeStep launches, each
// streaming one token back to the caller.
//
// The engine runs a continuous-batching scheduler: concurrent decode
// streams advance one step per round, and because the session queues
// launches through BATCH_EXEC, a round's launches across all active
// streams coalesce into one RPC. Requests carry an SLO class —
// latency-sensitive requests are admitted first and never shed ahead
// of batch-class ones — and the engine measures time-to-first-token
// and per-token latency per class in internal/obs histograms.
//
// With Config.Replicas > 1 the engine runs data-parallel across
// devices: each replica owns a device-resident weight copy, per-slot
// KV/prompt/state buffers, and a stream + event pair; readbacks are
// event-synchronized per replica under an explicit SetDevice bracket.
// Token streams depend only on (seed, prompt, position), so digests
// are bit-identical regardless of placement or replica count.
//
// Recovery: the decoder state is host-held and passed by value, so
// the only device state a round depends on is the weight buffer. The
// scheduler snapshots the session's replay counter around every
// round; if a server restart (and session replay) intervened, the
// round's results are discarded, weights are re-uploaded to every
// replica, and the round re-runs — tokens commit exactly once.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"cricket/internal/cricket"
	"cricket/internal/cubin"
	"cricket/internal/cuda"
	"cricket/internal/gpu"
	"cricket/internal/obs"
)

// A Class is a request's SLO class.
type Class int

const (
	// Latency marks interactive requests: admitted first, shed last.
	Latency Class = iota
	// Batch marks throughput requests: first to shed under overload.
	Batch
	numClasses = 2
)

func (c Class) String() string {
	switch c {
	case Latency:
		return "latency"
	case Batch:
		return "batch"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

var (
	// ErrShed reports that admission control rejected the request.
	ErrShed = errors.New("serve: request shed under load")
	// ErrDeadline reports that the request waited in the queue past
	// its deadline and was dropped before touching a device.
	ErrDeadline = errors.New("serve: queue wait exceeded deadline")
	// ErrClosed reports submission to a closed engine.
	ErrClosed = errors.New("serve: engine closed")
	// ErrCorrupt reports a token that failed host-side verification —
	// device weight state diverged and replay did not explain it.
	ErrCorrupt = errors.New("serve: device state diverged from host reference")
)

// A Request is one generation call.
type Request struct {
	// ID is echoed in the response; callers choose it.
	ID uint64
	// Prompt is the input folded in by the prefill launch. Must fit
	// Config.PromptCap.
	Prompt []byte
	// MaxTokens is the number of decode steps (tokens generated).
	MaxTokens int
	// Class selects the SLO class; the zero value is Latency.
	Class Class
	// Deadline bounds the queue wait (not the decode itself); zero
	// means no deadline.
	Deadline time.Duration
	// OnToken, when set, streams each token as it commits. Called
	// from the scheduler goroutine — keep it cheap.
	OnToken func(token uint32)
}

// A Response is one completed generation.
type Response struct {
	ID     uint64
	Tokens []uint32
	// Digest is FNV-1a over the little-endian token stream —
	// bit-identity across runs, replica counts, and fleet members.
	Digest uint64
	// TTFT is submit-to-first-token; Total is submit-to-last-token.
	TTFT  time.Duration
	Total time.Duration
	// Replica is the data-parallel replica (device ordinal) that
	// served the request.
	Replica int
}

// An SLOBudget is the per-class latency target the engine reports
// against.
type SLOBudget struct {
	// TTFT bounds the p99 time-to-first-token.
	TTFT time.Duration
	// PerToken bounds the p99 inter-token latency.
	PerToken time.Duration
}

// Config sizes the engine.
type Config struct {
	// Replicas is the data-parallel width: one replica per device
	// ordinal [0, Replicas). Zero selects 1.
	Replicas int
	// Slots is the concurrent decode-stream capacity per replica.
	// Zero selects 4.
	Slots int
	// QueueCap bounds the batch-class admission queue; the latency
	// class gets twice this. Zero selects 64.
	QueueCap int
	// PromptCap is the per-slot prompt buffer size. Zero selects 512.
	PromptCap int
	// KVBytes is the per-slot KV-cache capacity. Zero selects 2048.
	KVBytes int
	// WeightWords sizes the device weight buffer in u32 words,
	// identical across replicas. Zero selects 4096.
	WeightWords int
	// Seed makes the weight fill deterministic. Zero selects 1.
	Seed int64
	// SLO holds the per-class budgets for Report. Optional.
	SLO map[Class]SLOBudget
}

func (c Config) withDefaults() Config {
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.Slots == 0 {
		c.Slots = 4
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.PromptCap == 0 {
		c.PromptCap = 512
	}
	if c.KVBytes == 0 {
		c.KVBytes = 2048
	}
	if c.WeightWords == 0 {
		c.WeightWords = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// EngineStats are cumulative scheduler counters.
type EngineStats struct {
	// Submitted counts accepted submissions; Completed counts
	// responses delivered.
	Submitted uint64
	Completed uint64
	// Shed counts admission rejections per class.
	Shed [numClasses]uint64
	// Expired counts queued requests dropped at their deadline.
	Expired uint64
	// Rounds counts scheduler rounds; Launches counts kernel launches
	// (prefill + decode).
	Rounds   uint64
	Launches uint64
	// RoundRedos counts rounds re-run after a mid-round session
	// replay; WeightReloads counts weight re-uploads that recovery
	// forced (initial uploads not included).
	RoundRedos    uint64
	WeightReloads uint64
}

// pending is a queued request.
type pending struct {
	req  Request
	enq  time.Time
	done chan outcome
}

type outcome struct {
	resp Response
	err  error
}

// stream is one active decode slot.
type stream struct {
	active    bool
	p         *pending
	prefilled bool
	state     uint64
	step      int
	tokens    []uint32
	digest    uint64
	firstTok  time.Time
	lastTok   time.Time
}

// replica is one data-parallel device replica.
type replica struct {
	dev       int
	weights   gpu.Ptr
	states    gpu.Ptr // Slots × 8 B decoder states
	kv        gpu.Ptr // Slots × KVBytes
	prompts   gpu.Ptr // Slots × PromptCap
	st        cuda.Stream
	ev        cuda.Event
	prefill   cuda.Function
	decode    cuda.Function
	slots     []stream
	stateBuf  []byte // Slots × 8 readback scratch
	nActive   int
}

// Engine owns a cricket.Session exclusively and serves generation
// requests against it.
type Engine struct {
	cfg         Config
	s           *cricket.Session
	weights     []uint32 // host copy for verification
	weightBytes []byte

	mu     sync.Mutex
	latq   []*pending
	batq   []*pending
	closed bool
	stats  EngineStats

	wake chan struct{}
	quit chan struct{}
	dead chan struct{}

	// between holds closures the scheduler runs at the next
	// round boundary (e.g. a live migration), fed via Barrier.
	between chan func()

	reps        []*replica
	lastReplays uint64

	ttft [numClasses]*obs.Histogram
	ptok [numClasses]*obs.Histogram

	fatalErr error
}

// New builds the engine's device state (per replica: weights, slot
// buffers, stream, event, module) and starts the scheduler. The
// session must not be used by anyone else while the engine lives.
func New(s *cricket.Session, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	n, err := s.GetDeviceCount()
	if err != nil {
		return nil, err
	}
	if cfg.Replicas > n {
		return nil, fmt.Errorf("serve: %d replicas on a %d-device server", cfg.Replicas, n)
	}
	e := &Engine{
		cfg:     cfg,
		s:       s,
		wake:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
		dead:    make(chan struct{}),
		between: make(chan func(), 4),
	}
	for c := 0; c < numClasses; c++ {
		e.ttft[c] = &obs.Histogram{}
		e.ptok[c] = &obs.Histogram{}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	e.weightBytes = make([]byte, cfg.WeightWords*4)
	rng.Read(e.weightBytes)
	e.weights = make([]uint32, cfg.WeightWords)
	for i := range e.weights {
		e.weights[i] = binary.LittleEndian.Uint32(e.weightBytes[i*4:])
	}

	fatbin := builtinFatbin()
	for r := 0; r < cfg.Replicas; r++ {
		rep := &replica{dev: r, slots: make([]stream, cfg.Slots), stateBuf: make([]byte, cfg.Slots*8)}
		if err := s.SetDevice(r); err != nil {
			return nil, err
		}
		mod, err := s.ModuleLoad(fatbin)
		if err != nil {
			return nil, err
		}
		if rep.prefill, err = s.ModuleGetFunction(mod, cuda.KernelPrefill); err != nil {
			return nil, err
		}
		if rep.decode, err = s.ModuleGetFunction(mod, cuda.KernelDecodeStep); err != nil {
			return nil, err
		}
		if rep.weights, err = s.Malloc(uint64(len(e.weightBytes))); err != nil {
			return nil, err
		}
		if rep.states, err = s.Malloc(uint64(cfg.Slots * 8)); err != nil {
			return nil, err
		}
		if rep.kv, err = s.Malloc(uint64(cfg.Slots * cfg.KVBytes)); err != nil {
			return nil, err
		}
		if rep.prompts, err = s.Malloc(uint64(cfg.Slots * cfg.PromptCap)); err != nil {
			return nil, err
		}
		if err := s.MemcpyHtoD(rep.weights, e.weightBytes); err != nil {
			return nil, err
		}
		if rep.st, err = s.StreamCreate(); err != nil {
			return nil, err
		}
		if rep.ev, err = s.EventCreate(); err != nil {
			return nil, err
		}
		e.reps = append(e.reps, rep)
	}
	if err := s.SetDevice(0); err != nil {
		return nil, err
	}
	e.lastReplays = s.SessionStats().Replays

	go e.run()
	return e, nil
}

func builtinFatbin() []byte {
	var fb cubin.FatBinary
	fb.AddImage(cuda.BuiltinImage(80), true)
	return fb.Encode()
}

// A Ticket is a handle on an in-flight submission.
type Ticket struct {
	ch chan outcome
}

// Wait blocks until the request completes or fails.
func (t *Ticket) Wait() (Response, error) {
	o := <-t.ch
	return o.resp, o.err
}

// Submit enqueues a request; the outcome arrives on the returned
// ticket. Admission control applies here: a full queue sheds Batch
// requests immediately, and Latency requests once even the doubled
// latency queue is full.
func (e *Engine) Submit(req Request) (*Ticket, error) {
	if req.MaxTokens < 1 {
		return nil, fmt.Errorf("serve: MaxTokens = %d", req.MaxTokens)
	}
	if len(req.Prompt) > e.cfg.PromptCap {
		return nil, fmt.Errorf("serve: prompt %d B exceeds slot capacity %d B", len(req.Prompt), e.cfg.PromptCap)
	}
	p := &pending{req: req, enq: time.Now(), done: make(chan outcome, 1)}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	switch req.Class {
	case Batch:
		if len(e.batq) >= e.cfg.QueueCap {
			e.stats.Shed[Batch]++
			e.mu.Unlock()
			return nil, ErrShed
		}
		e.batq = append(e.batq, p)
	default:
		if len(e.latq) >= 2*e.cfg.QueueCap {
			e.stats.Shed[Latency]++
			e.mu.Unlock()
			return nil, ErrShed
		}
		e.latq = append(e.latq, p)
	}
	e.stats.Submitted++
	e.mu.Unlock()

	select {
	case e.wake <- struct{}{}:
	default:
	}
	return &Ticket{ch: p.done}, nil
}

// Do is Submit + Wait.
func (e *Engine) Do(req Request) (Response, error) {
	t, err := e.Submit(req)
	if err != nil {
		return Response{}, err
	}
	return t.Wait()
}

// Barrier runs fn from the scheduler goroutine at the next round
// boundary — the engine's quiescent point — and returns fn's result.
// Live migration of the underlying session goes through here.
func (e *Engine) Barrier(fn func() error) error {
	errc := make(chan error, 1)
	select {
	case e.between <- func() { errc <- fn() }:
	case <-e.dead:
		return ErrClosed
	}
	select {
	case e.wake <- struct{}{}:
	default:
	}
	select {
	case err := <-errc:
		return err
	case <-e.dead:
		return ErrClosed
	}
}

// Stats returns a copy of the scheduler counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Close stops the scheduler. Queued and in-flight requests fail with
// ErrClosed. The session itself stays open (the caller owns it).
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.dead
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.quit)
	select {
	case e.wake <- struct{}{}:
	default:
	}
	<-e.dead
	return e.fatalErr
}

// run is the scheduler: admit, round, commit, repeat.
func (e *Engine) run() {
	defer close(e.dead)
	defer e.failAll(ErrClosed)
	for {
		// Run any barrier work first: it expects a quiescent engine.
		select {
		case fn := <-e.between:
			fn()
			continue
		default:
		}
		if !e.admit() && e.idle() {
			select {
			case <-e.quit:
				return
			case fn := <-e.between:
				fn()
				continue
			case <-e.wake:
				continue
			}
		}
		select {
		case <-e.quit:
			return
		default:
		}
		if err := e.round(); err != nil {
			e.mu.Lock()
			e.fatalErr = err
			e.closed = true
			e.mu.Unlock()
			return
		}
	}
}

// idle reports no active streams and empty queues.
func (e *Engine) idle() bool {
	for _, r := range e.reps {
		if r.nActive > 0 {
			return false
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.latq) == 0 && len(e.batq) == 0
}

// admit moves queued requests into free slots, latency class first,
// dropping entries that outlived their deadline. Returns true if any
// stream was admitted.
func (e *Engine) admit() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	admitted := false
	now := time.Now()
	take := func(q *[]*pending) *pending {
		for len(*q) > 0 {
			p := (*q)[0]
			copy(*q, (*q)[1:])
			*q = (*q)[:len(*q)-1]
			if p.req.Deadline > 0 && now.Sub(p.enq) > p.req.Deadline {
				e.stats.Expired++
				p.done <- outcome{err: ErrDeadline}
				continue
			}
			return p
		}
		return nil
	}
	for {
		rep := e.freeSlotReplica()
		if rep == nil {
			break
		}
		p := take(&e.latq)
		if p == nil {
			p = take(&e.batq)
		}
		if p == nil {
			break
		}
		slot := -1
		for i := range rep.slots {
			if !rep.slots[i].active {
				slot = i
				break
			}
		}
		rep.slots[slot] = stream{active: true, p: p}
		rep.nActive++
		admitted = true
	}
	return admitted
}

// freeSlotReplica returns the replica with the most free slots, or
// nil when all are full — least-loaded placement keeps the
// data-parallel replicas evenly busy.
func (e *Engine) freeSlotReplica() *replica {
	var best *replica
	bestFree := 0
	for _, r := range e.reps {
		if free := len(r.slots) - r.nActive; free > bestFree {
			best, bestFree = r, free
		}
	}
	return best
}

// round advances every active stream one step: prefill for streams
// admitted this round, one decode step for the rest. All launches
// coalesce through the session's BATCH_EXEC queue; each replica's
// readback is event-synchronized under its own SetDevice bracket. If
// a session replay intervened, the round is discarded and re-run
// after re-uploading weights.
func (e *Engine) round() error {
	for redo := 0; ; redo++ {
		if redo > 0 {
			e.mu.Lock()
			e.stats.RoundRedos++
			e.mu.Unlock()
			if err := e.reloadWeights(); err != nil {
				return err
			}
		}
		replaysBefore := e.s.SessionStats().Replays
		if err := e.issueRound(); err != nil {
			return err
		}
		if e.s.SessionStats().Replays == replaysBefore {
			break
		}
		// A restart interleaved with the round: device weights were
		// replayed from an empty image, so nothing read back this
		// round can be trusted. Discard and redo with fresh weights.
		if redo > 8 {
			return fmt.Errorf("serve: round could not complete across %d replays", redo)
		}
	}
	return e.commitRound()
}

// issueRound enqueues every stream's launch and reads back each
// replica's state block.
func (e *Engine) issueRound() error {
	cfg := e.cfg
	grid := gpu.Dim3{X: 1, Y: 1, Z: 1}
	prefillBlock := gpu.Dim3{X: 256, Y: 1, Z: 1}
	decodeBlock := gpu.Dim3{X: 32, Y: 1, Z: 1}
	launches := uint64(0)
	for _, rep := range e.reps {
		if rep.nActive == 0 {
			continue
		}
		if err := e.s.SetDevice(rep.dev); err != nil {
			return err
		}
		for i := range rep.slots {
			sl := &rep.slots[i]
			if !sl.active {
				continue
			}
			statePtr := rep.states + gpu.Ptr(i*8)
			kvPtr := rep.kv + gpu.Ptr(i*cfg.KVBytes)
			if !sl.prefilled {
				promptPtr := rep.prompts + gpu.Ptr(i*cfg.PromptCap)
				if err := e.s.MemcpyHtoD(promptPtr, sl.p.req.Prompt); err != nil {
					return err
				}
				args := cuda.NewArgBuffer().
					Ptr(statePtr).Ptr(kvPtr).Ptr(promptPtr).Ptr(rep.weights).
					I32(int32(len(sl.p.req.Prompt))).I32(int32(cfg.KVBytes)).I32(int32(cfg.WeightWords)).
					Bytes()
				if err := e.s.LaunchKernel(rep.prefill, grid, prefillBlock, 0, rep.st, args); err != nil {
					return err
				}
			} else {
				args := cuda.NewArgBuffer().
					Ptr(statePtr).Ptr(kvPtr).Ptr(rep.weights).
					I32(int32(sl.step)).U64(sl.state).
					I32(int32(cfg.KVBytes)).I32(int32(cfg.WeightWords)).
					Bytes()
				if err := e.s.LaunchKernel(rep.decode, grid, decodeBlock, 0, rep.st, args); err != nil {
					return err
				}
			}
			launches++
		}
		if err := e.s.EventRecord(rep.ev, rep.st); err != nil {
			return err
		}
		if err := e.s.StreamSynchronize(rep.st); err != nil {
			return err
		}
		out, err := e.s.MemcpyDtoH(rep.states, uint64(len(rep.stateBuf)))
		if err != nil {
			return err
		}
		copy(rep.stateBuf, out)
	}
	e.mu.Lock()
	e.stats.Rounds++
	e.stats.Launches += launches
	e.mu.Unlock()
	return nil
}

// commitRound verifies each stream's new state against the host
// reference, emits tokens, and completes finished requests.
func (e *Engine) commitRound() error {
	now := time.Now()
	for _, rep := range e.reps {
		for i := range rep.slots {
			sl := &rep.slots[i]
			if !sl.active {
				continue
			}
			got := binary.LittleEndian.Uint64(rep.stateBuf[i*8:])
			if !sl.prefilled {
				want := cuda.PrefillRef(sl.p.req.Prompt, e.weights)
				if got != want {
					return fmt.Errorf("%w: prefill state %#x, want %#x", ErrCorrupt, got, want)
				}
				sl.state = got
				sl.prefilled = true
				sl.lastTok = now
				continue
			}
			want := cuda.DecodeStepRef(sl.state, sl.step, e.weights)
			if got != want {
				return fmt.Errorf("%w: decode step %d state %#x, want %#x", ErrCorrupt, sl.step, got, want)
			}
			sl.state = got
			sl.step++
			tok := cuda.TokenOf(got)
			sl.tokens = append(sl.tokens, tok)
			sl.digest = fnvMix(sl.digest, tok)
			cl := sl.p.req.Class
			if cl < 0 || cl >= numClasses {
				cl = Latency
			}
			if sl.firstTok.IsZero() {
				sl.firstTok = now
				e.ttft[cl].Observe(now.Sub(sl.p.enq))
			} else {
				e.ptok[cl].Observe(now.Sub(sl.lastTok))
			}
			sl.lastTok = now
			if sl.p.req.OnToken != nil {
				sl.p.req.OnToken(tok)
			}
			if sl.step >= sl.p.req.MaxTokens {
				resp := Response{
					ID:      sl.p.req.ID,
					Tokens:  sl.tokens,
					Digest:  sl.digest,
					TTFT:    sl.firstTok.Sub(sl.p.enq),
					Total:   now.Sub(sl.p.enq),
					Replica: rep.dev,
				}
				sl.p.done <- outcome{resp: resp}
				*sl = stream{}
				rep.nActive--
				e.mu.Lock()
				e.stats.Completed++
				e.mu.Unlock()
			}
		}
	}
	return nil
}

// fnvMix folds one little-endian token into an FNV-1a running hash
// (seeded lazily so the zero value works).
func fnvMix(h uint64, tok uint32) uint64 {
	if h == 0 {
		h = 14695981039346656037 // FNV-1a offset basis
	}
	for s := 0; s < 32; s += 8 {
		h ^= uint64(byte(tok >> s))
		h *= 1099511628211
	}
	return h
}

// reloadWeights re-uploads the weight buffer to every replica after a
// replay rebuilt structure onto empty devices.
func (e *Engine) reloadWeights() error {
	for _, rep := range e.reps {
		if err := e.s.SetDevice(rep.dev); err != nil {
			return err
		}
		if err := e.s.MemcpyHtoD(rep.weights, e.weightBytes); err != nil {
			return err
		}
	}
	e.mu.Lock()
	e.stats.WeightReloads++
	e.mu.Unlock()
	return nil
}

// failAll rejects every queued and in-flight request.
func (e *Engine) failAll(err error) {
	e.mu.Lock()
	qs := append(append([]*pending(nil), e.latq...), e.batq...)
	e.latq, e.batq = nil, nil
	e.mu.Unlock()
	if e.fatalErr != nil {
		err = e.fatalErr
	}
	for _, p := range qs {
		p.done <- outcome{err: err}
	}
	for _, rep := range e.reps {
		for i := range rep.slots {
			if rep.slots[i].active {
				rep.slots[i].p.done <- outcome{err: err}
				rep.slots[i] = stream{}
			}
		}
		rep.nActive = 0
	}
}

// A ClassReport is the per-class SLO view.
type ClassReport struct {
	Class     Class
	TTFT      obs.HistSnapshot
	PerToken  obs.HistSnapshot
	TTFTp99   time.Duration
	PerTokP99 time.Duration
	// SLOMet is false only when a budget exists and was exceeded.
	SLOMet bool
}

// Report returns per-class latency distributions and budget checks.
func (e *Engine) Report() []ClassReport {
	out := make([]ClassReport, 0, numClasses)
	for c := 0; c < numClasses; c++ {
		r := ClassReport{
			Class:    Class(c),
			TTFT:     e.ttft[c].Snapshot(),
			PerToken: e.ptok[c].Snapshot(),
			SLOMet:   true,
		}
		r.TTFTp99 = r.TTFT.Quantile(0.99)
		r.PerTokP99 = r.PerToken.Quantile(0.99)
		if b, ok := e.cfg.SLO[Class(c)]; ok {
			if b.TTFT > 0 && !(obs.SLO{Quantile: 0.99, Budget: b.TTFT}).Met(r.TTFT) {
				r.SLOMet = false
			}
			if b.PerToken > 0 && !(obs.SLO{Quantile: 0.99, Budget: b.PerToken}).Met(r.PerToken) {
				r.SLOMet = false
			}
		}
		out = append(out, r)
	}
	return out
}
