package bench

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cricket/internal/cricket"
	"cricket/internal/cuda"
	"cricket/internal/fleet"
	"cricket/internal/gpu"
	"cricket/internal/guest"
	"cricket/internal/netsim"
	"cricket/internal/oncrpc"
)

// This file is the fleet chaos harness plus the routed-vs-direct
// overhead measurement. The chaos half answers the tentpole's
// acceptance question directly: kill one of three members while many
// placed sessions are mid-workload, and verify that zero sessions are
// lost and every survivor's output digest is bit-identical to a
// single-server run. The overhead half runs Fig 6-style
// microbenchmark loops through a pool-routed session and a direct
// session on identical simulated stacks: placement work happens only
// at dial time, so the steady-state per-call cost must match — the
// simulated-time comparison is deterministic and the gate is < 5%.

// FleetResult summarizes one fleet chaos storm and the overhead
// comparison.
type FleetResult struct {
	Members  int    // fleet size
	Sessions int    // concurrent placed sessions
	Calls    int    // kernel launches each session attempts
	Killed   string // member killed mid-storm

	Survivors  int
	Failed     int    // sessions that exhausted their attempt budget (must be 0)
	Mismatches int    // survivors whose digest differs from the baseline
	Digest     uint64 // single-server baseline digest

	Failovers  uint64 // placements moved off the dead member
	Reconnects uint64 // summed across sessions
	Replays    uint64

	// RecoveryMS is the worst wall-clock time any session spent in
	// reconnection across the storm — the failover recovery latency.
	RecoveryMS float64

	// Routed-vs-direct overhead on Fig 6-style micro loops. The
	// simulated figures are deterministic; wall-clock is recorded for
	// context but not gated (in-process pipes make it noisy).
	DirectSimMS     float64
	RoutedSimMS     float64
	OverheadPct     float64 // simulated, gated < 5%
	DirectWallMS    float64
	RoutedWallMS    float64
	WallOverheadPct float64

	// End-state invariants over the surviving members.
	LeasesLeft int
}

// Violations lists every breached fleet invariant; empty means the
// storm upheld all of them.
func (r FleetResult) Violations() []string {
	var v []string
	if r.Survivors != r.Sessions {
		v = append(v, fmt.Sprintf("lost sessions: %d of %d survived (%d failed)",
			r.Survivors, r.Sessions, r.Failed))
	}
	if r.Mismatches > 0 {
		v = append(v, fmt.Sprintf("%d surviving digest(s) differ from the single-server run", r.Mismatches))
	}
	if r.Failovers == 0 {
		v = append(v, "killing a member caused no failovers (kill missed the storm)")
	}
	if r.OverheadPct >= 5 {
		v = append(v, fmt.Sprintf("routed overhead %.2f%% >= 5%% (simulated)", r.OverheadPct))
	}
	if r.LeasesLeft > 0 {
		v = append(v, fmt.Sprintf("%d lease(s) left on surviving members after close", r.LeasesLeft))
	}
	return v
}

// fleetNode is one killable in-process cricket-server member.
type fleetNode struct {
	name string

	mu     sync.Mutex
	rpcSrv *oncrpc.Server
	srv    *cricket.Server
	conns  []net.Conn
	dead   bool
}

func newFleetNode(name string, ttl time.Duration) (*fleetNode, func()) {
	rt := cuda.NewRuntime(nil, gpu.New(gpu.SpecA100))
	srv := cricket.NewServer(rt)
	stop := func() {}
	if ttl > 0 {
		srv.SetLimits(cricket.Limits{LeaseTTL: ttl})
		stop = srv.StartLeaseSweeper(25 * time.Millisecond)
	}
	rpcSrv := oncrpc.NewServer()
	srv.Attach(rpcSrv)
	n := &fleetNode{name: name, rpcSrv: rpcSrv, srv: srv}
	return n, stop
}

func (n *fleetNode) dial() (io.ReadWriteCloser, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead {
		return nil, fmt.Errorf("fleet member %s: down", n.name)
	}
	cli, srvConn := net.Pipe()
	n.conns = append(n.conns, srvConn)
	go n.rpcSrv.ServeConn(srvConn)
	return cli, nil
}

// kill takes the member down for good: every connection severed,
// every future dial refused.
func (n *fleetNode) kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dead = true
	for _, c := range n.conns {
		c.Close()
	}
	n.conns = nil
}

func (n *fleetNode) close() {
	n.kill()
	n.rpcSrv.Close()
}

func (n *fleetNode) member() fleet.Member { return fleet.Member{Name: n.name, Dial: n.dial} }

// Fleet runs the chaos storm and the overhead comparison.
//
// Storm: `sessions` concurrent guests place themselves across a
// three-member pool and each runs the deterministic churn workload;
// when the first guest crosses a third of its calls, the member
// hosting the most sessions is killed and stays dead. Every affected
// session must fail over (HRW next rank), replay, and finish with the
// single-server digest.
func Fleet(sessions, calls int, seed int64) (FleetResult, error) {
	if sessions <= 0 {
		sessions = 9
	}
	if calls <= 0 {
		calls = 96
	}
	res := FleetResult{Members: 3, Sessions: sessions, Calls: calls}

	// Single-server baseline digest (the bit-identity reference).
	base := newRestartableServer()
	bs, err := cricket.NewSession(cricket.SessionOptions{
		Options: cricket.Options{Platform: guest.NativeRust()},
		Redial:  base.redial,
		Seed:    1,
	})
	if err != nil {
		base.close()
		return res, err
	}
	res.Digest, err = churnWorkload(bs, calls, -1)
	bs.Close()
	base.close()
	if err != nil {
		return res, fmt.Errorf("baseline workload: %w", err)
	}

	// Three governed members. The TTL outlives any reconnect backoff a
	// live session performs; the dead member's leases are moot (its
	// whole runtime dies with it), but surviving members must end the
	// storm clean.
	const ttl = time.Second
	nodes := make([]*fleetNode, 0, 3)
	members := make([]fleet.Member, 0, 3)
	for i := 0; i < 3; i++ {
		n, stopSweep := newFleetNode(fmt.Sprintf("gpu%d", i), ttl)
		defer stopSweep()
		defer n.close()
		nodes = append(nodes, n)
		members = append(members, n.member())
	}
	pool, err := fleet.New(fleet.Options{
		ProbeInterval: 5 * time.Millisecond,
		DownAfter:     2,
		UpAfter:       2,
	}, members...)
	if err != nil {
		return res, err
	}
	stopProber := pool.StartProber()
	defer stopProber()

	// The kill trigger: the first session to cross calls/3 takes down
	// the member hosting the most sessions at that moment.
	var killOnce sync.Once
	killAt := calls / 3
	kill := func() {
		killOnce.Do(func() {
			busiest, most := "", -1
			for _, st := range pool.Members() {
				if st.Sessions > most {
					busiest, most = st.Name, st.Sessions
				}
			}
			for _, n := range nodes {
				if n.name == busiest {
					res.Killed = busiest
					n.kill()
				}
			}
		})
	}

	type outcome struct {
		digest uint64
		err    error
		stats  cricket.SessionStats
	}
	outcomes := make([]outcome, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := pool.Session(fmt.Sprintf("guest-%d", i), cricket.SessionOptions{
				Options:     cricket.Options{Platform: guest.NativeRust()},
				Seed:        seed + int64(i) + 1,
				MaxAttempts: 25,
				BackoffBase: 500 * time.Microsecond,
				BackoffMax:  10 * time.Millisecond,
			})
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			digest, err := fleetStormWorkload(s.Session, calls, killAt, kill)
			st := s.SessionStats()
			s.Close()
			outcomes[i] = outcome{digest: digest, err: err, stats: st}
		}(i)
	}
	wg.Wait()

	var worstRecovery time.Duration
	for _, o := range outcomes {
		res.Reconnects += o.stats.Reconnects
		res.Replays += o.stats.Replays
		if o.stats.RecoveryTime > worstRecovery {
			worstRecovery = o.stats.RecoveryTime
		}
		switch {
		case o.err != nil:
			res.Failed++
		default:
			res.Survivors++
			if o.digest != res.Digest {
				res.Mismatches++
			}
		}
	}
	res.RecoveryMS = float64(worstRecovery) / float64(time.Millisecond)
	res.Failovers = pool.Stats().Failovers
	stopProber()

	// Surviving members must hold no leases once every session closed.
	for _, n := range nodes {
		if n.name == res.Killed {
			continue
		}
		res.LeasesLeft += n.srv.LeaseCount()
	}

	// Overhead comparison on pristine stacks.
	if err := res.measureOverhead(calls * 4); err != nil {
		return res, err
	}
	return res, nil
}

// fleetStormWorkload is churnWorkload with a mid-run hook: hook fires
// once when the workload crosses the at-th call. The operation
// sequence (and so the digest) is identical to churnWorkload's
// fault-free run.
func fleetStormWorkload(s *cricket.Session, calls, at int, hook func()) (uint64, error) {
	fired := false
	return churnWorkloadHooked(s, calls, func(i int) {
		if !fired && i == at {
			fired = true
			hook()
		}
	})
}

// measureOverhead runs the same Fig 6-style micro loop through a
// direct session and a pool-routed session on identical simulated
// platforms sharing nothing, and records both simulated and
// wall-clock elapsed time.
func (r *FleetResult) measureOverhead(calls int) error {
	directSim, directWall, err := overheadRun(calls, func(node *fleetNode) (*cricket.Session, func(), error) {
		s, err := cricket.NewSession(cricket.SessionOptions{
			Options: overheadOptions(),
			Redial:  node.dial,
			Seed:    1,
		})
		return s, func() {}, err
	})
	if err != nil {
		return fmt.Errorf("direct overhead run: %w", err)
	}
	routedSim, routedWall, err := overheadRun(calls, func(node *fleetNode) (*cricket.Session, func(), error) {
		// Two pristine peers join the measured node so routing ranks a
		// real fleet, with the background prober running as it would in
		// steady state.
		peer1, stop1 := newFleetNode("peer1", 0)
		peer2, stop2 := newFleetNode("peer2", 0)
		pool, err := fleet.New(fleet.Options{ProbeInterval: 20 * time.Millisecond},
			node.member(), peer1.member(), peer2.member())
		if err != nil {
			stop1()
			stop2()
			return nil, nil, err
		}
		stopProber := pool.StartProber()
		cleanup := func() {
			stopProber()
			peer1.close()
			peer2.close()
			stop1()
			stop2()
		}
		// A key homed on the measured node keeps the two runs on
		// identical servers.
		key := ""
		for i := 0; ; i++ {
			key = fmt.Sprintf("overhead-%d", i)
			if pool.RankFor(key)[0] == node.name {
				break
			}
		}
		s, err := pool.Session(key, cricket.SessionOptions{Options: overheadOptions(), Seed: 1})
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		return s.Session, cleanup, err
	})
	if err != nil {
		return fmt.Errorf("routed overhead run: %w", err)
	}
	r.DirectSimMS = float64(directSim) / float64(time.Millisecond)
	r.RoutedSimMS = float64(routedSim) / float64(time.Millisecond)
	if directSim > 0 {
		r.OverheadPct = (float64(routedSim)/float64(directSim) - 1) * 100
	}
	r.DirectWallMS = float64(directWall) / float64(time.Millisecond)
	r.RoutedWallMS = float64(routedWall) / float64(time.Millisecond)
	if directWall > 0 {
		r.WallOverheadPct = (float64(routedWall)/float64(directWall) - 1) * 100
	}
	return nil
}

// overheadOptions is the simulated platform both overhead runs share:
// the paper's Hermit guest with its network cost model on a private
// virtual clock.
func overheadOptions() cricket.Options {
	return cricket.Options{Platform: guest.RustyHermit(), Clock: netsim.NewClock()}
}

// overheadRun executes the Fig 6 micro mix — cudaGetDeviceCount,
// cudaMalloc/cudaFree pairs, and kernel launches — through whatever
// session the factory builds against one fresh member, and returns
// simulated and wall-clock elapsed time for the measured loop.
func overheadRun(calls int, mkSession func(*fleetNode) (*cricket.Session, func(), error)) (sim, wall time.Duration, err error) {
	node, stopSweep := newFleetNode("measured", 0)
	defer stopSweep()
	defer node.close()
	s, cleanup, err := mkSession(node)
	if err != nil {
		return 0, 0, err
	}
	defer cleanup()
	defer s.Close()

	m, err := s.ModuleLoad(churnFatbin())
	if err != nil {
		return 0, 0, err
	}
	f, err := s.ModuleGetFunction(m, cuda.KernelMatrixMul)
	if err != nil {
		return 0, 0, err
	}
	const dim = 32
	size := uint64(dim * dim * 4)
	dA, err := s.Malloc(size)
	if err != nil {
		return 0, 0, err
	}
	args := cuda.NewArgBuffer().Ptr(dA).Ptr(dA).Ptr(dA).I32(dim).I32(dim).Bytes()
	grid := gpu.Dim3{X: 1, Y: 1, Z: 1}
	block := gpu.Dim3{X: 32, Y: 32, Z: 1}

	simStart := s.SimNow()
	wallStart := time.Now()
	for i := 0; i < calls; i++ {
		if _, err := s.GetDeviceCount(); err != nil {
			return 0, 0, err
		}
	}
	for i := 0; i < calls/2; i++ {
		p, err := s.Malloc(1 << 20)
		if err != nil {
			return 0, 0, err
		}
		if err := s.Free(p); err != nil {
			return 0, 0, err
		}
	}
	for i := 0; i < calls; i++ {
		if err := s.LaunchKernel(f, grid, block, 0, 0, args); err != nil {
			return 0, 0, err
		}
	}
	if err := s.DeviceSynchronize(); err != nil {
		return 0, 0, err
	}
	return s.SimNow() - simStart, time.Since(wallStart), nil
}
