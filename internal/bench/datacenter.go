package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"cricket/internal/cricket"
	"cricket/internal/fleet"
	"cricket/internal/guest"
	"cricket/internal/obs"
	"cricket/internal/serve"
)

// This file is the datacenter-day macro-bench: a seeded diurnal
// open-loop inference trace played against a governed elastic fleet.
// The trace stands in for ~10^6 simulated users, scaled down
// deterministically (usersPerRequest below) so the CI-sized run keeps
// the same shape: a trough where most of the fleet parks to zero, a
// morning ramp that wakes it back up (paying the modeled cold start
// mid-traffic), a peak that overloads the hot shard until the
// batch class sheds while the latency class keeps its TTFT budget,
// and a cooldown that drains the tail. Every generation that
// completes must be bit-identical to a static single-server run of
// the same trace — parking, waking, and shedding may cost latency or
// reject work at admission, but never corrupt a token stream.
//
// Headline numbers: p99 TTFT and p99 inter-token latency for the
// latency class, shed rate, parks, and cold starts — plus per-phase
// latency windows cut from the engines' lifetime histograms with
// obs.Windowed-style snapshot subtraction.

// usersPerRequest is the deterministic downscale factor: each trace
// request stands for this many simulated users, so the default
// 10^6-user day becomes a ~133-request CI run with the same diurnal
// shape.
const usersPerRequest = 7500

// dcPhases is the diurnal plan: share of the request budget and tick
// count per phase. Peak carries most of the day, as a real diurnal
// load does.
var dcPhases = []struct {
	name  string
	share float64 // fraction of the request budget
	ticks int
}{
	{"trough", 0.06, 8},
	{"ramp", 0.18, 8},
	{"peak", 0.72, 8},
	{"cooldown", 0.04, 4},
}

// DatacenterPhase is one diurnal phase's completion-time latency
// window (engine histogram deltas between phase boundaries).
type DatacenterPhase struct {
	Name      string
	Submitted int    // requests injected during the phase
	Shed      int    // admission rejections during the phase
	Completed uint64 // latency-class completions inside the window
	TTFTp99MS float64
	PTokP99MS float64
}

// DatacenterResult is the macro-bench report.
type DatacenterResult struct {
	Users    int   // simulated users the trace stands for
	Requests int   // trace size after the deterministic downscale
	Members  int   // fleet size
	Seed     int64

	Completed   int // generations delivered
	ShedLatency int // latency-class admission rejections
	ShedBatch   int // batch-class admission rejections
	Expired     int // queued requests dropped at their deadline
	Lost        int // submitted but neither completed, shed, nor expired (must be 0)
	Mismatches  int // token digests differing from the static run (must be 0)

	Parks      uint64 // members scaled to zero at the trough
	ColdStarts uint64 // wake-on-attach cold starts at the ramp

	ShedRate     float64 // (ShedLatency+ShedBatch+Expired) / Requests
	TTFTp99MS    float64 // latency class, whole day
	PTokP99MS    float64 // latency class, whole day
	TTFTBudgetMS float64 // latency-class SLO budget Violations checks against

	Launches uint64 // kernel launches across the fleet (prefill + decode)
	Redos    uint64 // scheduler rounds re-run after a session replay

	Phases []DatacenterPhase
}

// Violations lists every breached datacenter-day invariant; empty
// means the diurnal run upheld all of them.
func (r DatacenterResult) Violations() []string {
	var v []string
	if r.Lost > 0 {
		v = append(v, fmt.Sprintf("lost requests: %d submitted but never resolved", r.Lost))
	}
	if r.Completed == 0 {
		v = append(v, "no generations completed")
	}
	if r.Mismatches > 0 {
		v = append(v, fmt.Sprintf("%d token digest(s) differ from the static single-server run", r.Mismatches))
	}
	if r.Parks == 0 {
		v = append(v, "fleet never parked at the trough")
	}
	if r.ColdStarts == 0 {
		v = append(v, "no wake-on-attach cold start at the ramp")
	}
	if r.ShedBatch == 0 {
		v = append(v, "peak never overloaded: zero batch-class sheds")
	}
	if r.ShedRate > 0.60 {
		v = append(v, fmt.Sprintf("shed rate %.0f%% above the 60%% bound", r.ShedRate*100))
	}
	if r.ShedLatency > r.ShedBatch {
		v = append(v, fmt.Sprintf("latency class shed more than batch (%d > %d): admission priority inverted", r.ShedLatency, r.ShedBatch))
	}
	if r.TTFTp99MS > r.TTFTBudgetMS {
		v = append(v, fmt.Sprintf("latency-class p99 TTFT %.1f ms over the %.0f ms budget", r.TTFTp99MS, r.TTFTBudgetMS))
	}
	return v
}

// dcRequest is one pre-generated trace entry.
type dcRequest struct {
	id     uint64
	phase  int
	tick   int
	member int // dispatch target (engine index)
	class  serve.Class
	prompt []byte
	maxTok int
}

// dcTrace deterministically expands the seeded diurnal plan into a
// flat request list. The hot-shard skew at peak (most batch traffic
// hashing to member 0) is what overloads one engine's batch queue
// while the latency class round-robins across the fleet.
func dcTrace(requests, members int, rng *rand.Rand) []dcRequest {
	// Split the budget across phases, remainders to the heavier ones.
	counts := make([]int, len(dcPhases))
	assigned := 0
	for i, ph := range dcPhases {
		counts[i] = int(float64(requests) * ph.share)
		assigned += counts[i]
	}
	counts[2] += requests - assigned // leftovers land on the peak

	var trace []dcRequest
	var id uint64
	rr := 0
	for pi, ph := range dcPhases {
		active := members
		if pi == 0 { // trough: only member 0 is serving
			active = 1
		}
		for ti := 0; ti < ph.ticks; ti++ {
			// Spread the phase budget over its ticks, front-loading
			// the remainder so early peak ticks burst hardest.
			n := counts[pi] / ph.ticks
			if ti < counts[pi]%ph.ticks {
				n++
			}
			for i := 0; i < n; i++ {
				id++
				r := dcRequest{
					id:     id,
					phase:  pi,
					tick:   ti,
					maxTok: 8 + rng.Intn(17),
					prompt: make([]byte, 24+rng.Intn(72)),
				}
				rng.Read(r.prompt)
				if pi == 2 && rng.Intn(100) < 55 {
					r.class = serve.Batch
				}
				if r.class == serve.Batch && rng.Intn(100) < 70 {
					r.member = 0 // hot shard
				} else {
					r.member = rr % active
					rr++
				}
				trace = append(trace, r)
			}
		}
	}
	return trace
}

// dcEngineConfig is shared by every fleet engine and the static
// baseline: the weight seed and sizes must match for token digests to
// be comparable. Only queue/slot capacity differs (the baseline gets
// a queue big enough to never shed).
func dcEngineConfig(seed int64, queueCap int) serve.Config {
	return serve.Config{
		Slots:       2,
		QueueCap:    queueCap,
		PromptCap:   128,
		KVBytes:     768,
		WeightWords: 2048,
		Seed:        seed,
		SLO: map[serve.Class]serve.SLOBudget{
			serve.Latency: {TTFT: 250 * time.Millisecond, PerToken: 100 * time.Millisecond},
			serve.Batch:   {TTFT: 2 * time.Second, PerToken: 500 * time.Millisecond},
		},
	}
}

// dcBaseline serves the whole trace on one static server with an
// unbounded queue and returns the per-request token digests — the
// bit-identity reference the elastic day is held to.
func dcBaseline(trace []dcRequest, seed int64) (map[uint64]uint64, error) {
	srv := newRestartableServer()
	defer srv.close()
	s, err := cricket.NewSession(cricket.SessionOptions{
		Options: cricket.Options{Platform: guest.NativeRust(), Batch: 16},
		Redial:  srv.redial,
		Seed:    seed,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	cfg := dcEngineConfig(seed, len(trace)+1)
	cfg.Slots = 4
	eng, err := serve.New(s, cfg)
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	tickets := make([]*serve.Ticket, len(trace))
	for i, r := range trace {
		tickets[i], err = eng.Submit(serve.Request{
			ID: r.id, Prompt: r.prompt, MaxTokens: r.maxTok,
		})
		if err != nil {
			return nil, fmt.Errorf("baseline submit %d: %w", r.id, err)
		}
	}
	digests := make(map[uint64]uint64, len(trace))
	for i, tk := range tickets {
		resp, err := tk.Wait()
		if err != nil {
			return nil, fmt.Errorf("baseline request %d: %w", trace[i].id, err)
		}
		digests[resp.ID] = resp.Digest
	}
	return digests, nil
}

// dcFleetEngine is one member's serving stack: a pool-placed session
// (whose attach wakes the member if parked) and the engine on top.
type dcFleetEngine struct {
	ps  *fleet.Session
	eng *serve.Engine
}

// dcStartEngine attaches a pool session to member (waking it if
// parked) and starts an engine on it. jitterSeed varies per member;
// weightSeed must be identical fleet-wide or digests diverge.
func dcStartEngine(pool *fleet.Pool, member string, weightSeed, jitterSeed int64) (*dcFleetEngine, error) {
	key := keysRankedOn(pool, member, 1)[0]
	opts := elasticSessionOpts(jitterSeed)
	opts.Options.Batch = 16
	ps, err := pool.Session(key, opts)
	if err != nil {
		return nil, fmt.Errorf("attach %s: %w", member, err)
	}
	eng, err := serve.New(ps.Session, dcEngineConfig(weightSeed, 2))
	if err != nil {
		ps.Close()
		return nil, fmt.Errorf("engine on %s: %w", member, err)
	}
	return &dcFleetEngine{ps: ps, eng: eng}, nil
}

// Datacenter plays the diurnal day. users sizes the simulated
// population (scaled down by usersPerRequest); seed drives the trace,
// the engine weights, and every fleet jitter stream.
func Datacenter(users int, seed int64) (DatacenterResult, error) {
	if users <= 0 {
		users = 1_000_000
	}
	if seed == 0 {
		seed = 1
	}
	requests := users / usersPerRequest
	if requests < 32 {
		requests = 32
	}
	const members = 3
	res := DatacenterResult{
		Users: users, Requests: requests, Members: members, Seed: seed,
		TTFTBudgetMS: 250,
	}

	rng := rand.New(rand.NewSource(seed))
	trace := dcTrace(requests, members, rng)
	res.Requests = len(trace)

	baseline, err := dcBaseline(trace, seed)
	if err != nil {
		return res, fmt.Errorf("static baseline: %w", err)
	}

	// The fleet: three single-GPU members with park/wake hooks, no
	// registry churn — membership is static today, capacity is not.
	const (
		idlePark  = 10 * time.Millisecond
		wakeDelay = 2 * time.Millisecond
		tickDur   = 4 * time.Millisecond
	)
	nodes := make([]*elasticNode, members)
	memberList := make([]fleet.Member, members)
	for i := range nodes {
		n := newElasticNode(fmt.Sprintf("gpu%d", i), 0)
		nodes[i] = n
		memberList[i] = fleet.Member{Name: n.name, Dial: n.dial, Park: n.park, Wake: n.wake}
	}
	pool, err := fleet.New(fleet.Options{
		IdlePark:  idlePark,
		WakeDelay: wakeDelay,
		Seed:      uint64(seed),
	}, memberList...)
	if err != nil {
		return res, err
	}
	defer func() {
		for _, n := range nodes {
			n.close()
		}
	}()

	engines := make([]*dcFleetEngine, 0, members)
	closeEngines := func() {
		for _, fe := range engines {
			fe.eng.Close()
			fe.ps.Close()
		}
		engines = engines[:0]
	}
	defer closeEngines()

	// Trough capacity: member 0 only. Members 1 and 2 go idle and the
	// parker scales them to zero.
	fe0, err := dcStartEngine(pool, nodes[0].name, seed, seed)
	if err != nil {
		return res, err
	}
	engines = append(engines, fe0)

	// Outcome accounting. Submit is non-blocking (admit or shed), so
	// the tick loop stays open-loop; a goroutine per accepted ticket
	// collects the response.
	var (
		mu         sync.Mutex
		wg         sync.WaitGroup
		completed  = make(map[uint64]uint64) // id -> digest
		perPhase   = make([]DatacenterPhase, len(dcPhases))
		shedByCls  [2]int
		expired    int
		lostErrs   []error
		ttftPrev   obs.HistSnapshot // latency-class windows across phases
		ptokPrev   obs.HistSnapshot
		mergedLatT = func() (ttft, ptok obs.HistSnapshot) {
			for _, fe := range engines {
				for _, cr := range fe.eng.Report() {
					if cr.Class == serve.Latency {
						ttft.Merge(cr.TTFT)
						ptok.Merge(cr.PerToken)
					}
				}
			}
			return
		}
	)
	submit := func(fe *dcFleetEngine, r dcRequest) {
		tk, err := fe.eng.Submit(serve.Request{
			ID: r.id, Prompt: r.prompt, MaxTokens: r.maxTok, Class: r.class,
		})
		if err != nil {
			mu.Lock()
			switch err {
			case serve.ErrShed:
				shedByCls[r.class]++
				perPhase[r.phase].Shed++
			default:
				lostErrs = append(lostErrs, fmt.Errorf("request %d: %w", r.id, err))
			}
			mu.Unlock()
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := tk.Wait()
			mu.Lock()
			defer mu.Unlock()
			switch err {
			case nil:
				completed[resp.ID] = resp.Digest
			case serve.ErrDeadline:
				expired++
			default:
				lostErrs = append(lostErrs, fmt.Errorf("request %d: %w", r.id, err))
			}
		}()
	}

	cutWindow := func(pi int) {
		ttft, ptok := mergedLatT()
		mu.Lock()
		dT, dP := ttft.Sub(ttftPrev), ptok.Sub(ptokPrev)
		ttftPrev, ptokPrev = ttft, ptok
		perPhase[pi].Name = dcPhases[pi].name
		perPhase[pi].Completed = dT.Count
		perPhase[pi].TTFTp99MS = float64(dT.Quantile(0.99)) / float64(time.Millisecond)
		perPhase[pi].PTokP99MS = float64(dP.Quantile(0.99)) / float64(time.Millisecond)
		mu.Unlock()
	}

	next := 0 // trace cursor
	for pi, ph := range dcPhases {
		if pi == 1 {
			// Ramp: capacity follows load. Attaching to the parked
			// members wakes them (the modeled cold start) before the
			// first ramp request lands on them.
			for i := 1; i < members; i++ {
				fe, err := dcStartEngine(pool, nodes[i].name, seed, seed+int64(i))
				if err != nil {
					return res, err
				}
				engines = append(engines, fe)
			}
		}
		for ti := 0; ti < ph.ticks; ti++ {
			for next < len(trace) && trace[next].phase == pi && trace[next].tick == ti {
				r := trace[next]
				next++
				perPhase[pi].Submitted++
				submit(engines[r.member%len(engines)], r)
			}
			if pi == 0 {
				pool.ParkIdle()
			}
			time.Sleep(tickDur)
		}
		if pi == 0 {
			// The trough must actually scale to zero before the ramp
			// is allowed to pay for waking it back up.
			if !waitFor(2*time.Second, func() bool {
				pool.ParkIdle()
				return pool.Stats().Parks >= members-1
			}) {
				return res, fmt.Errorf("members never parked at the trough")
			}
		}
		if pi < len(dcPhases)-1 {
			cutWindow(pi)
		}
	}
	wg.Wait()
	cutWindow(len(dcPhases) - 1)

	// Day's over: collect the books.
	ttftLife, ptokLife := mergedLatT()
	res.TTFTp99MS = float64(ttftLife.Quantile(0.99)) / float64(time.Millisecond)
	res.PTokP99MS = float64(ptokLife.Quantile(0.99)) / float64(time.Millisecond)
	for _, fe := range engines {
		st := fe.eng.Stats()
		res.Launches += st.Launches
		res.Redos += st.RoundRedos
	}
	closeEngines()

	mu.Lock()
	defer mu.Unlock()
	res.Completed = len(completed)
	res.ShedLatency = shedByCls[serve.Latency]
	res.ShedBatch = shedByCls[serve.Batch]
	res.Expired = expired
	res.Lost = len(trace) - res.Completed - res.ShedLatency - res.ShedBatch - res.Expired
	for id, dig := range completed {
		if baseline[id] != dig {
			res.Mismatches++
		}
	}
	res.ShedRate = float64(res.ShedLatency+res.ShedBatch+res.Expired) / float64(len(trace))
	st := pool.Stats()
	res.Parks = st.Parks
	res.ColdStarts = st.ColdStarts
	res.Phases = perPhase
	if len(lostErrs) > 0 {
		return res, fmt.Errorf("datacenter day: %d requests lost, first: %w", len(lostErrs), lostErrs[0])
	}
	return res, nil
}
