package bench

import (
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"cricket/internal/cricket"
	"cricket/internal/fleet"
	"cricket/internal/guest"
	"cricket/internal/netsim"
)

// xferNode wraps a fleet member with the three bulk carriers so a kill
// takes down the member's data connections, shm segments, and RDMA
// queue pairs along with its control plane.
type xferNode struct {
	*fleetNode
	mu    sync.Mutex
	conns []io.Closer
	rings []*netsim.ShmRing
	eps   []*netsim.RdmaEndpoint
}

// alive returns the member's server, or an error once it was killed.
func (n *xferNode) alive() (*cricket.Server, error) {
	n.fleetNode.mu.Lock()
	defer n.fleetNode.mu.Unlock()
	if n.dead {
		return nil, errNodeDown(n.name)
	}
	return n.srv, nil
}

func (n *xferNode) dataDial() (io.ReadWriteCloser, error) {
	srv, err := n.alive()
	if err != nil {
		return nil, err
	}
	dc, ds := net.Pipe()
	n.mu.Lock()
	n.conns = append(n.conns, ds)
	n.mu.Unlock()
	go srv.ServeDataConn(ds)
	return dc, nil
}

func (n *xferNode) shmOpen() (*netsim.ShmRing, error) {
	srv, err := n.alive()
	if err != nil {
		return nil, err
	}
	ring := netsim.NewShmRing(8, 256<<10)
	n.mu.Lock()
	n.rings = append(n.rings, ring)
	n.mu.Unlock()
	go srv.ServeShm(ring)
	return ring, nil
}

func (n *xferNode) rdmaOpen() (*netsim.RdmaEndpoint, error) {
	srv, err := n.alive()
	if err != nil {
		return nil, err
	}
	cep, sep := netsim.NewRdmaPair(8)
	n.mu.Lock()
	n.eps = append(n.eps, cep)
	n.mu.Unlock()
	go srv.ServeRDMA(sep, make([]byte, 1<<20))
	return cep, nil
}

func (n *xferNode) kill() {
	n.mu.Lock()
	for _, c := range n.conns {
		c.Close()
	}
	for _, r := range n.rings {
		r.Close()
	}
	for _, ep := range n.eps {
		ep.Close()
	}
	n.conns, n.rings, n.eps = nil, nil, nil
	n.mu.Unlock()
	n.fleetNode.kill()
}

// fleetBulkWorkload uploads a full position-dependent buffer every
// iteration (so a failover onto a fresh member is corrected by the
// next upload) and digests one final readback: the end state depends
// only on the last upload, making the digest bit-identical across
// transports and fault schedules.
func fleetBulkWorkload(s *cricket.Session, iters, size, killAt int, kill func()) (uint64, error) {
	p, err := s.Malloc(uint64(size))
	if err != nil {
		return 0, err
	}
	buf := make([]byte, size)
	for i := 0; i < iters; i++ {
		if i == killAt && kill != nil {
			kill()
		}
		for j := range buf {
			buf[j] = byte(j*5+j>>10) ^ byte(i)
		}
		if err := s.MemcpyHtoD(p, buf); err != nil {
			return 0, err
		}
	}
	out, err := s.MemcpyDtoH(p, uint64(size))
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(out)
	return h.Sum64(), nil
}

// TestFleetFailoverPerTransport kills the member a session is placed
// on right before a multi-chunk upload, once per bulk transport: the
// transfer hits the dead carrier partway through, and the session must
// fail over to a surviving member, replay, renegotiate the transport
// there, and finish with a digest bit-identical to the inline run.
func TestFleetFailoverPerTransport(t *testing.T) {
	const (
		iters  = 12
		size   = 1 << 20
		killAt = iters / 3
	)

	// Inline single-server baseline: the bit-identity reference.
	base := newRestartableServer()
	bs, err := cricket.NewSession(cricket.SessionOptions{
		Options: cricket.Options{Platform: guest.NativeC()},
		Redial:  base.redial,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fleetBulkWorkload(bs, iters, size, -1, nil)
	bs.Close()
	base.close()
	if err != nil {
		t.Fatalf("baseline workload: %v", err)
	}

	methods := []cricket.TransferMethod{
		cricket.TransferParallelSockets,
		cricket.TransferSharedMem,
		cricket.TransferRDMA,
	}
	for _, m := range methods {
		t.Run(m.String(), func(t *testing.T) {
			nodes := make(map[string]*xferNode, 3)
			members := make([]fleet.Member, 0, 3)
			for i := 0; i < 3; i++ {
				fn, stopSweep := newFleetNode(fmt.Sprintf("%s-gpu%d", m, i), 0)
				t.Cleanup(stopSweep)
				t.Cleanup(fn.close)
				nodes[fn.name] = &xferNode{fleetNode: fn}
				members = append(members, fleet.Member{Name: fn.name, Dial: fn.dial})
			}
			pool, err := fleet.New(fleet.Options{
				ProbeInterval: 5 * time.Millisecond,
				DownAfter:     2,
				UpAfter:       2,
			}, members...)
			if err != nil {
				t.Fatal(err)
			}
			stopProber := pool.StartProber()
			t.Cleanup(stopProber)

			// The transport hooks must open carriers against the member
			// this session's control connection goes to — including the
			// failover target. The session's own dialer is the only
			// race-free source: it names the endpoint before Connect
			// opens carriers there, and unlike Member.Dial it is never
			// touched by the health prober (which dials every member on
			// each probe round), and unlike the pool's placement table
			// it is already current while the failover Connect is still
			// in flight.
			const key = "bulk-guest"
			td := &trackingDialer{EndpointDialer: pool.Dialer(key)}
			node := func() *xferNode {
				name := td.current()
				n := nodes[name]
				if n == nil {
					t.Fatalf("no dialed member (%q)", name)
				}
				return n
			}
			opts := cricket.Options{Platform: guest.NativeC(), Transfer: m, Sockets: 3}
			switch m {
			case cricket.TransferParallelSockets:
				opts.DataDial = func() (io.ReadWriteCloser, error) { return node().dataDial() }
			case cricket.TransferSharedMem:
				opts.ShmOpen = func() (*netsim.ShmRing, error) { return node().shmOpen() }
			case cricket.TransferRDMA:
				opts.RdmaOpen = func() (*netsim.RdmaEndpoint, error) { return node().rdmaOpen() }
			}
			s, err := cricket.NewSession(cricket.SessionOptions{
				Options:     opts,
				Dialer:      td,
				Seed:        1,
				MaxAttempts: 25,
				BackoffBase: 500 * time.Microsecond,
				BackoffMax:  10 * time.Millisecond,
				Sleep:       func(time.Duration) {},
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { s.Close() })

			if got := s.Transfer(); got != m {
				t.Fatalf("negotiated %v, want %v", got, m)
			}
			got, err := fleetBulkWorkload(s, iters, size, killAt, func() { node().kill() })
			if err != nil {
				t.Fatalf("workload across failover: %v", err)
			}
			if got != want {
				t.Fatalf("digest %#x differs from inline baseline %#x", got, want)
			}
			if st := s.SessionStats(); st.Reconnects == 0 {
				t.Fatalf("kill caused no reconnects: %+v", st)
			}
			if pool.Stats().Failovers == 0 {
				t.Fatal("kill caused no failovers")
			}
			// The replacement carrier must live on a surviving member.
			if _, err := node().alive(); err != nil {
				t.Fatal("session ended on the dead member")
			}
			if got := s.Transfer(); got != m {
				t.Fatalf("failover degraded the transport to %v", got)
			}
		})
	}
}

// trackingDialer remembers which member the session last successfully
// dialed, so carrier hooks invoked during the subsequent Connect (and
// any later lazy reopen) target the same member.
type trackingDialer struct {
	cricket.EndpointDialer
	mu   sync.Mutex
	name string
}

func (d *trackingDialer) DialEndpoint() (io.ReadWriteCloser, string, error) {
	conn, name, err := d.EndpointDialer.DialEndpoint()
	if err == nil {
		d.mu.Lock()
		d.name = name
		d.mu.Unlock()
	}
	return conn, name, err
}

func (d *trackingDialer) current() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.name
}

func errNodeDown(name string) error {
	return &nodeDownError{name}
}

type nodeDownError struct{ name string }

func (e *nodeDownError) Error() string { return "fleet member " + e.name + ": down" }
