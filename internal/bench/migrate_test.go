package bench

import "testing"

// A small migration storm: all sessions homed on one member, one
// rebalance mid-workload, plus the mid-copy abort phase.
func TestMigrateStormNoViolations(t *testing.T) {
	res, err := Migrate(6, 48, 42, 0)
	if err != nil {
		t.Fatalf("migrate storm: %v", err)
	}
	for _, v := range res.Violations() {
		t.Errorf("violation: %s", v)
	}
	t.Logf("migrated key=%s %s->%s rounds=%d full=%dB precopy=%dB delta=%dB pause=%.2fms survivors=%d",
		res.MigratedKey, res.From, res.To, res.Rounds, res.FullBytes,
		res.PrecopyBytes, res.DeltaBytes, res.PauseMS, res.Survivors)
}
