package bench

import (
	"fmt"

	"cricket/internal/core"
	"cricket/internal/cricket"
	"cricket/internal/cubin"
	"cricket/internal/cuda"
	"cricket/internal/gpu"
	"cricket/internal/guest"
)

// A BatchPoint is one (platform, batch size) measurement of the
// batching ablation: the Fig 6c kernel-launch microbenchmark run with
// the client's BATCH_EXEC queue set to the given size.
type BatchPoint struct {
	Platform string `json:"platform"`
	// Batch is the queue threshold; 0 means batching disabled (every
	// launch is its own RPC, the seed behaviour).
	Batch int `json:"batch"`
	// CallsPerSec is launches per simulated second, including the
	// final synchronize that drains the queue.
	CallsPerSec float64 `json:"calls_per_sec"`
	// TimeToSyncSec is the simulated time from the first launch until
	// cudaDeviceSynchronize returns — the latency an application
	// actually observes, so queueing cannot hide cost past the sync.
	TimeToSyncSec float64 `json:"time_to_sync_sec"`
}

// DefaultBatchSizes is the published sweep: unbatched plus powers of
// two through 256.
var DefaultBatchSizes = []int{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}

// AblationBatch sweeps the client batch size over the Fig 6c
// kernel-launch microbenchmark on every guest platform. Each point
// issues `calls` launches of the builtin vectorAdd kernel and then
// synchronizes, so the measured window always covers the final queue
// drain. calls<=0 selects 100,000 (the paper's count); sizes==nil
// selects DefaultBatchSizes.
func AblationBatch(calls int, sizes []int) ([]BatchPoint, error) {
	if calls <= 0 {
		calls = 100_000
	}
	if sizes == nil {
		sizes = DefaultBatchSizes
	}
	var points []BatchPoint
	for _, p := range guest.All() {
		for _, batch := range sizes {
			pt, err := batchPoint(p, batch, calls)
			if err != nil {
				return nil, fmt.Errorf("%s, batch %d: %w", p.Name, batch, err)
			}
			points = append(points, pt)
		}
	}
	return points, nil
}

// batchPoint measures one platform at one batch size.
func batchPoint(p guest.Platform, batch, calls int) (BatchPoint, error) {
	var pt BatchPoint
	err := withVG(p, cricket.Options{Batch: batch}, func(vg *core.VirtualGPU) error {
		var fb cubin.FatBinary
		fb.AddImage(cuda.BuiltinImage(80), true)
		mod, err := vg.LoadModule(fb.Encode())
		if err != nil {
			return err
		}
		f, err := mod.Function(cuda.KernelVectorAdd)
		if err != nil {
			return err
		}
		const n = 256
		a, err := vg.Alloc(n * 4)
		if err != nil {
			return err
		}
		b, err := vg.Alloc(n * 4)
		if err != nil {
			return err
		}
		out, err := vg.Alloc(n * 4)
		if err != nil {
			return err
		}
		grid := gpu.Dim3{X: 1, Y: 1, Z: 1}
		block := gpu.Dim3{X: 256, Y: 1, Z: 1}
		args := cuda.NewArgBuffer().Ptr(a.Ptr()).Ptr(b.Ptr()).Ptr(out.Ptr()).I32(n).Bytes()
		// Verify one full launch, then replay the sweep timing-only.
		if err := vg.Launch(f, grid, block, 0, args); err != nil {
			return err
		}
		if err := vg.Synchronize(); err != nil {
			return err
		}
		vg.Cluster().SetTimingOnly(true)
		defer vg.Cluster().SetTimingOnly(false)

		start := vg.Now()
		for i := 0; i < calls; i++ {
			if err := vg.Launch(f, grid, block, 0, args); err != nil {
				return err
			}
		}
		// The sync point drains the queue and surfaces any deferred
		// batch error, CUDA-style.
		if err := vg.Synchronize(); err != nil {
			return err
		}
		elapsed := vg.Now() - start
		pt = BatchPoint{
			Platform:      p.Name,
			Batch:         batch,
			CallsPerSec:   float64(calls) / elapsed.Seconds(),
			TimeToSyncSec: elapsed.Seconds(),
		}
		return nil
	})
	return pt, err
}

// BatchSpeedup reports the calls/s ratio of the best measured point at
// batch >= minBatch over the unbatched (batch 0) point for one
// platform. It returns 0 if either side is missing.
func BatchSpeedup(points []BatchPoint, platform string, minBatch int) float64 {
	var base, best float64
	for _, pt := range points {
		if pt.Platform != platform {
			continue
		}
		if pt.Batch == 0 {
			base = pt.CallsPerSec
		} else if pt.Batch >= minBatch && pt.CallsPerSec > best {
			best = pt.CallsPerSec
		}
	}
	if base == 0 {
		return 0
	}
	return best / base
}

// RenderBatch formats the ablation grouped by platform.
func RenderBatch(points []BatchPoint) string {
	out := "Batching ablation: kernel-launch calls/s by batch size\n"
	last := ""
	for _, pt := range points {
		if pt.Platform != last {
			out += fmt.Sprintf("  %s\n", pt.Platform)
			last = pt.Platform
		}
		label := fmt.Sprintf("batch %d", pt.Batch)
		if pt.Batch == 0 {
			label = "unbatched"
		}
		out += fmt.Sprintf("    %-10s %14.0f calls/s   (%.3fs to sync)\n",
			label, pt.CallsPerSec, pt.TimeToSyncSec)
	}
	return out
}
