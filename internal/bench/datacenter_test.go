package bench

import "testing"

// TestDatacenterSmoke plays a reduced diurnal day and holds it to the
// full invariant set: nothing lost, digests bit-identical to the
// static run, the fleet parked at the trough and cold-started at the
// ramp, the peak shed batch-class work, and the latency class kept
// its TTFT budget.
func TestDatacenterSmoke(t *testing.T) {
	r, err := Datacenter(600_000, 7)
	if err != nil {
		t.Fatalf("Datacenter: %v", err)
	}
	for _, msg := range r.Violations() {
		t.Errorf("violation: %s", msg)
	}
	if t.Failed() {
		t.Logf("result: %+v", r)
	}
	if len(r.Phases) != 4 || r.Phases[2].Name != "peak" {
		t.Fatalf("phase windows malformed: %+v", r.Phases)
	}
	// The per-phase windows are consecutive Sub deltas of the same
	// lifetime histograms, so they must tile the day: at least one
	// latency-class completion lands in some window.
	var win uint64
	for _, ph := range r.Phases {
		win += ph.Completed
	}
	if win == 0 {
		t.Fatal("phase windows saw zero latency-class completions")
	}
}
