package bench

import "testing"

// A small storm: enough sessions to spread across all three members
// so the kill is guaranteed to strand someone, and enough calls that
// the kill lands mid-workload.
func TestFleetStormNoViolations(t *testing.T) {
	res, err := Fleet(6, 48, 42)
	if err != nil {
		t.Fatalf("fleet storm: %v", err)
	}
	if res.Killed == "" {
		t.Fatal("no member was killed")
	}
	for _, v := range res.Violations() {
		t.Errorf("violation: %s", v)
	}
	t.Logf("killed=%s survivors=%d failovers=%d reconnects=%d replays=%d recovery=%.2fms overhead=%.2f%% (sim %.3f vs %.3f ms)",
		res.Killed, res.Survivors, res.Failovers, res.Reconnects, res.Replays,
		res.RecoveryMS, res.OverheadPct, res.DirectSimMS, res.RoutedSimMS)
}
