package bench

import (
	"testing"
)

func TestChurnSmallStormUpholdsInvariants(t *testing.T) {
	r, err := Churn(8, 64, 11)
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Violations(); len(v) != 0 {
		t.Fatalf("invariant violations: %v (result %+v)", v, r)
	}
	if r.Survivors != 6 || r.Abandoned != 2 {
		t.Fatalf("got %d survivors, %d abandoned; want 6, 2", r.Survivors, r.Abandoned)
	}
	if r.Reconnects == 0 {
		t.Fatal("churn plan injected no reconnects — the storm was a no-op")
	}
	if r.Server.LeasesExpired == 0 {
		t.Fatal("abandoned sessions' leases never expired")
	}
	if r.Server.ReclaimedBytes == 0 {
		t.Fatal("reclamation freed no bytes despite abandoned allocations")
	}
}

func TestChurnFullStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("full 16x200 churn storm skipped in -short mode")
	}
	r, err := Churn(16, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Violations(); len(v) != 0 {
		t.Fatalf("invariant violations: %v (result %+v)", v, r)
	}
}
