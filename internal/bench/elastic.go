package bench

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cricket/internal/cricket"
	"cricket/internal/cuda"
	"cricket/internal/fleet"
	"cricket/internal/gpu"
	"cricket/internal/guest"
	"cricket/internal/netsim"
	"cricket/internal/oncrpc"
)

// This file is the elastic-fleet chaos harness: the end-to-end proof
// that dynamic membership keeps every session alive and bit-identical
// while the fleet itself is in motion. A seeded netsim.MembershipPlan
// scripts the storm — a member joins mid-traffic, an asymmetric
// partition cuts another member's heartbeats off from the registry
// (it demotes, then its lease expires and it is evicted, all while it
// keeps serving the sessions already on it), the partition heals and
// the member re-registers — then the fleet drains, a member retires
// gracefully (deregister -> drain -> live-migrate-off), the rest park
// to zero after the idle deadline, and a wake storm proves that
// concurrent attachers to a parked member coalesce on one modeled
// cold start while a member whose wake keeps failing spills its
// attacher to the next rank. Every session in every phase must finish
// with the digest of a static single-server run.

// ElasticResult summarizes one elastic membership storm.
type ElasticResult struct {
	Members  int   // initial fleet size (before the mid-storm join)
	Sessions int   // concurrent storm sessions
	Calls    int   // kernel launches per session
	Seed     int64 // membership-plan seed

	Digest     uint64 // single-server baseline digest
	Survivors  int    // sessions (all phases) that finished
	Failed     int    // sessions that failed (must be 0)
	Mismatches int    // digests differing from the baseline (must be 0)

	// Membership transitions observed (registry + pool counters).
	Joined       uint64 // admissions beyond the initial members (mid-storm join, heal re-admission)
	Suspects     uint64 // missed renew periods fed to the demotion hysteresis
	Evicted      uint64 // TTL evictions (the partitioned member)
	Rejoined     bool   // the evicted member re-registered after the heal
	Retired      uint64 // graceful deregister -> drain -> migrate-off
	RetireMoved  int    // sessions live-migrated off the retiring member
	HealedJitter bool   // registrar renew intervals drew distinct jittered values

	// Scale-to-zero.
	Parked        uint64  // members parked after the idle deadline
	ColdStarts    uint64  // wakes in the coalesced wake-storm phase (must be 1)
	WakeCoalesced uint64  // attachers that rode the in-flight wake (must be > 0)
	WakeFailures  uint64  // exhausted wakes in the spill phase (must be > 0)
	ColdAttachMS  float64 // slowest wake-storm attach (pays the modeled cold start)
	WarmAttachMS  float64 // attach to the same member once awake

	LeasesLeft int // leases on awake members after every session closed
}

// Violations lists every breached elastic invariant; empty means the
// storm upheld all of them.
func (r ElasticResult) Violations() []string {
	var v []string
	if r.Failed > 0 {
		v = append(v, fmt.Sprintf("lost sessions: %d failed", r.Failed))
	}
	if r.Mismatches > 0 {
		v = append(v, fmt.Sprintf("%d digest(s) differ from the single-server run", r.Mismatches))
	}
	if r.Joined == 0 {
		v = append(v, "no member joined mid-storm")
	}
	if r.Suspects == 0 {
		v = append(v, "missed heartbeats never fed the demotion hysteresis")
	}
	if r.Evicted == 0 {
		v = append(v, "the partitioned member was never TTL-evicted")
	}
	if !r.Rejoined {
		v = append(v, "the evicted member did not re-register after the heal")
	}
	if r.Retired != 1 {
		v = append(v, fmt.Sprintf("graceful retire count %d, want 1", r.Retired))
	}
	if r.Parked == 0 {
		v = append(v, "no member parked after the idle deadline")
	}
	if r.ColdStarts != 1 {
		v = append(v, fmt.Sprintf("wake storm took %d cold starts, want exactly 1 (coalescing failed)", r.ColdStarts))
	}
	if r.WakeCoalesced == 0 {
		v = append(v, "no attacher coalesced on the in-flight wake")
	}
	if r.WakeFailures == 0 {
		v = append(v, "the failing member's wake never exhausted its retries (spill path untested)")
	}
	if r.ColdAttachMS <= r.WarmAttachMS {
		v = append(v, fmt.Sprintf("cold attach %.2fms not slower than warm attach %.2fms", r.ColdAttachMS, r.WarmAttachMS))
	}
	if !r.HealedJitter {
		v = append(v, "registrar renew intervals are not jittered")
	}
	if r.LeasesLeft > 0 {
		v = append(v, fmt.Sprintf("%d lease(s) left on awake members after close", r.LeasesLeft))
	}
	return v
}

// elasticNode is one in-process cricket-server member that can scale
// to zero: park takes the final checkpoint, serializes it, and tears
// the instance down; wake boots a fresh instance (new epoch) and
// restores the checkpoint — the bench's stand-in for releasing and
// re-launching a real machine.
type elasticNode struct {
	name string
	ttl  time.Duration

	mu        sync.Mutex
	rpcSrv    *oncrpc.Server
	srv       *cricket.Server
	stopSweep func()
	conns     []net.Conn
	parked    bool
	dead      bool
	ckpt      []byte // serialized device-0 checkpoint from the final park
	wakeFails int    // injected consecutive Wake failures remaining
}

func newElasticNode(name string, ttl time.Duration) *elasticNode {
	n := &elasticNode{name: name, ttl: ttl}
	n.mu.Lock()
	n.bootLocked()
	n.mu.Unlock()
	return n
}

// bootLocked starts a fresh server instance. Called with n.mu held.
func (n *elasticNode) bootLocked() {
	rt := cuda.NewRuntime(nil, gpu.New(gpu.SpecA100))
	srv := cricket.NewServer(rt)
	n.stopSweep = func() {}
	if n.ttl > 0 {
		srv.SetLimits(cricket.Limits{LeaseTTL: n.ttl})
		n.stopSweep = srv.StartLeaseSweeper(25 * time.Millisecond)
	}
	rpcSrv := oncrpc.NewServer()
	srv.Attach(rpcSrv)
	n.srv, n.rpcSrv = srv, rpcSrv
}

func (n *elasticNode) dial() (io.ReadWriteCloser, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead || n.parked {
		return nil, fmt.Errorf("elastic member %s: unreachable", n.name)
	}
	cli, srvConn := net.Pipe()
	n.conns = append(n.conns, srvConn)
	go n.rpcSrv.ServeConn(srvConn)
	return cli, nil
}

// park is the member's Park hook: final checkpoint, serialize it,
// release the instance.
func (n *elasticNode) park() error {
	n.mu.Lock()
	srv, rpcSrv, stopSweep := n.srv, n.rpcSrv, n.stopSweep
	n.mu.Unlock()
	if err := srv.Park(); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := srv.SaveCheckpoint(0, &buf); err != nil {
		return err
	}
	n.mu.Lock()
	n.ckpt = append([]byte(nil), buf.Bytes()...)
	n.parked = true
	conns := n.conns
	n.conns = nil
	n.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	stopSweep()
	rpcSrv.Close()
	return nil
}

// wake is the member's Wake hook: fail the injected count, then boot
// a fresh instance and restore the parked checkpoint.
func (n *elasticNode) wake() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.wakeFails > 0 {
		n.wakeFails--
		return fmt.Errorf("elastic member %s: wake failed (injected)", n.name)
	}
	if !n.parked {
		return nil
	}
	n.bootLocked()
	if len(n.ckpt) > 0 {
		if err := n.srv.LoadCheckpoint(0, bytes.NewReader(n.ckpt)); err != nil {
			return err
		}
	}
	n.parked = false
	return nil
}

func (n *elasticNode) setWakeFails(c int) {
	n.mu.Lock()
	n.wakeFails = c
	n.mu.Unlock()
}

func (n *elasticNode) close() {
	n.mu.Lock()
	n.dead = true
	conns := n.conns
	n.conns = nil
	rpcSrv, stopSweep := n.rpcSrv, n.stopSweep
	n.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	stopSweep()
	rpcSrv.Close()
}

func (n *elasticNode) isParked() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.parked
}

// elasticSessionOpts is the storm sessions' recovery budget: generous
// attempts with tight backoff, so failovers resolve fast and a wake's
// modeled cold start never exhausts a session.
func elasticSessionOpts(seed int64) cricket.SessionOptions {
	return cricket.SessionOptions{
		Options:     cricket.Options{Platform: guest.NativeRust()},
		Seed:        seed,
		MaxAttempts: 30,
		BackoffBase: 500 * time.Microsecond,
		BackoffMax:  10 * time.Millisecond,
	}
}

// Elastic runs the membership chaos storm. sessions/calls size the
// storm phase; seed drives the membership plan, the per-session
// recovery jitter, and every fleet/registrar jitter stream.
func Elastic(sessions, calls int, seed int64) (ElasticResult, error) {
	if sessions <= 0 {
		sessions = 8
	}
	if calls <= 0 {
		calls = 96
	}
	if seed == 0 {
		seed = 1
	}
	res := ElasticResult{Members: 3, Sessions: sessions, Calls: calls, Seed: seed}

	// Single-server baseline digest: the bit-identity reference every
	// session in every phase is held to.
	base := newRestartableServer()
	bs, err := cricket.NewSession(cricket.SessionOptions{
		Options: cricket.Options{Platform: guest.NativeRust()},
		Redial:  base.redial,
		Seed:    1,
	})
	if err != nil {
		base.close()
		return res, err
	}
	res.Digest, err = churnWorkload(bs, calls, -1)
	bs.Close()
	base.close()
	if err != nil {
		return res, fmt.Errorf("baseline workload: %w", err)
	}

	// The control plane: an empty pool whose membership is entirely
	// registry-driven. No prober — missed heartbeats are the liveness
	// signal here, feeding the same hysteresis the prober would.
	const (
		memberTTL = time.Second            // server-side client-lease TTL
		leaseTTL  = 150 * time.Millisecond // registry membership-lease TTL
		wakeDelay = 25 * time.Millisecond  // modeled cold start
		idlePark  = 30 * time.Millisecond
		downAfter = 2
		wakeRetry = 2
	)
	nodes := map[string]*elasticNode{}
	var nodesMu sync.Mutex
	node := func(name string) *elasticNode {
		nodesMu.Lock()
		defer nodesMu.Unlock()
		return nodes[name]
	}
	addNode := func(n *elasticNode) {
		nodesMu.Lock()
		nodes[n.name] = n
		nodesMu.Unlock()
	}

	pool, err := fleet.New(fleet.Options{
		DownAfter:        downAfter,
		UpAfter:          2,
		IdlePark:         idlePark,
		WakeDelay:        wakeDelay,
		WakeRetries:      wakeRetry,
		WakeBackoff:      time.Millisecond,
		NoMembersBackoff: time.Millisecond,
		Seed:             uint64(seed),
	})
	if err != nil {
		return res, err
	}
	registry := fleet.NewRegistry(pool, fleet.RegistryOptions{
		DefaultTTL: leaseTTL,
		MinTTL:     50 * time.Millisecond,
		Dial: func(name, _ string) (io.ReadWriteCloser, error) {
			n := node(name)
			if n == nil {
				return nil, fmt.Errorf("no node %q", name)
			}
			return n.dial()
		},
		Wrap: func(m fleet.Member) fleet.Member {
			if n := node(m.Name); n != nil {
				m.Park = n.park
				m.Wake = n.wake
			}
			return m
		},
	})
	regRPC := oncrpc.NewServer()
	defer regRPC.Close()
	registry.Attach(regRPC)
	stopSweep := registry.StartSweeper(10 * time.Millisecond)
	defer stopSweep()

	// Members reach the registry through a MultiPlan, so the harness
	// can partition one member's heartbeat path asymmetrically — the
	// registry stops hearing from it while the member keeps serving.
	plan := netsim.NewMultiPlan()
	var regConnsMu sync.Mutex
	regConns := map[string]net.Conn{}
	regDial := func(name string) func() (io.ReadWriteCloser, error) {
		return plan.Dialer("reg:"+name, func() (io.ReadWriteCloser, error) {
			cli, srvConn := net.Pipe()
			go regRPC.ServeConn(srvConn)
			regConnsMu.Lock()
			regConns[name] = cli
			regConnsMu.Unlock()
			return cli, nil
		})
	}

	registrars := map[string]*fleet.Registrar{}
	startMember := func(i int, name string) error {
		n := newElasticNode(name, memberTTL)
		addNode(n)
		reg, err := fleet.StartRegistrar(fleet.RegistrarOptions{
			Name:          name,
			Addr:          name, // in-process: the name is the address
			Epoch:         n.srv.Epoch(),
			TTL:           leaseTTL,
			Dial:          regDial(name),
			RedialBackoff: 20 * time.Millisecond,
			Seed:          uint64(seed) + uint64(i),
		})
		if err != nil {
			return err
		}
		registrars[name] = reg
		return nil
	}
	defer func() {
		nodesMu.Lock()
		all := make([]*elasticNode, 0, len(nodes))
		for _, n := range nodes {
			all = append(all, n)
		}
		nodesMu.Unlock()
		for _, n := range all {
			n.close()
		}
	}()

	names := []string{"gpu0", "gpu1", "gpu2"}
	for i, name := range names {
		if err := startMember(i, name); err != nil {
			return res, fmt.Errorf("registering %s: %w", name, err)
		}
	}
	if got := len(pool.Members()); got != 3 {
		return res, fmt.Errorf("after self-registration: %d members, want 3", got)
	}

	// The seeded membership schedule for the storm.
	mplan := netsim.MembershipPlan{
		Seed:         seed,
		Steps:        sessions * calls,
		Members:      len(names),
		MaxWakeFails: wakeRetry,
	}
	events := mplan.Events()
	victim := names[events[1].Target]
	wakeTarget := names[events[3].Target]
	wakeFails := events[4].WakeFails

	// Storm phase: every session runs the deterministic workload while
	// a global call counter trips the scripted transitions. Only the
	// first session to cross a threshold fires its event; the heal
	// additionally waits for the eviction it must follow.
	var stepCount atomic.Int64
	var joinOnce, partOnce, healOnce sync.Once
	joiner := "gpu3"
	fire := func() {
		step := int(stepCount.Add(1))
		if step >= events[0].Step {
			joinOnce.Do(func() {
				if err := startMember(len(names), joiner); err == nil {
					res.Joined++
				}
			})
		}
		if step >= events[1].Step {
			partOnce.Do(func() {
				plan.Block("reg:" + victim)
				regConnsMu.Lock()
				c := regConns[victim]
				regConnsMu.Unlock()
				if c != nil {
					c.Close() // sever the live heartbeat transport too
				}
			})
		}
		if step >= events[2].Step {
			healOnce.Do(func() {
				// The heal follows the eviction: wait (bounded) for the
				// victim's lease to actually expire, then reconnect it.
				waitFor(2*time.Second, func() bool {
					return !memberPresent(pool, victim)
				})
				plan.Unblock("reg:" + victim)
			})
		}
	}

	type outcome struct {
		digest uint64
		err    error
	}
	outcomes := make([]outcome, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := pool.Session(fmt.Sprintf("guest-%d", i), elasticSessionOpts(seed+int64(i)+1))
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			digest, err := churnWorkloadHooked(s.Session, calls, func(int) { fire() })
			s.Close()
			outcomes[i] = outcome{digest: digest, err: err}
		}(i)
	}
	wg.Wait()
	for _, o := range outcomes {
		res.tally(o.digest, o.err)
	}

	// The storm may end before the async transitions settle: the
	// victim must be evicted and then re-admitted by its own registrar
	// before the fleet can drain. (If failed sessions cut the storm
	// short of an event's step, fire it now — a missing transition
	// still surfaces through the violation gates.)
	partOnce.Do(func() {
		plan.Block("reg:" + victim)
		regConnsMu.Lock()
		c := regConns[victim]
		regConnsMu.Unlock()
		if c != nil {
			c.Close()
		}
	})
	healOnce.Do(func() {
		waitFor(2*time.Second, func() bool { return !memberPresent(pool, victim) })
		plan.Unblock("reg:" + victim)
	})
	joinOnce.Do(func() {
		if err := startMember(len(names), joiner); err == nil {
			res.Joined++
		}
	})
	if !waitFor(2*time.Second, func() bool { return memberPresent(pool, victim) }) {
		return res, fmt.Errorf("victim %s never re-registered after the heal", victim)
	}
	res.Rejoined = true

	// Graceful retire: a few sessions homed on the joiner run the
	// workload; halfway through, the joiner deregisters — the registry
	// drains it and live-migrates its sessions off, mid-call-stream,
	// without disturbing their digests.
	retireKeys := keysRankedOn(pool, joiner, 3)
	var retireOnce sync.Once
	var retireErr error
	routcomes := make([]outcome, len(retireKeys))
	wg = sync.WaitGroup{}
	for i, key := range retireKeys {
		wg.Add(1)
		go func(i int, key string) {
			defer wg.Done()
			s, err := pool.Session(key, elasticSessionOpts(seed+100+int64(i)))
			if err != nil {
				routcomes[i] = outcome{err: err}
				return
			}
			digest, err := churnWorkloadHooked(s.Session, calls, func(step int) {
				if step == calls/2 {
					retireOnce.Do(func() { retireErr = registrars[joiner].Stop() })
				}
			})
			s.Close()
			routcomes[i] = outcome{digest: digest, err: err}
		}(i, key)
	}
	wg.Wait()
	for _, o := range routcomes {
		res.tally(o.digest, o.err)
	}
	if retireErr != nil {
		return res, fmt.Errorf("graceful deregister: %w", retireErr)
	}
	if memberPresent(pool, joiner) {
		return res, fmt.Errorf("retired member %s still in the pool", joiner)
	}

	// Scale-to-zero: with every session closed the members are idle;
	// past the idle deadline they park (final checkpoint, instance
	// released). The registrars keep heartbeating — parked is a
	// deliberate state, not a death.
	if !waitFor(2*time.Second, func() bool {
		pool.ParkIdle()
		for _, name := range names {
			if !node(name).isParked() {
				return false
			}
		}
		return true
	}) {
		return res, fmt.Errorf("members never parked after the idle deadline")
	}

	// Spill: one member's wake fails past its retry budget; the attach
	// must spill to the next-ranked member and succeed there (waking
	// it instead).
	statsBefore := pool.Stats()
	spillMember, spillKey := spillTarget(pool, names, wakeTarget)
	node(spillMember).setWakeFails(1000) // never wakes
	ss, err := pool.Session(spillKey, elasticSessionOpts(seed+200))
	if err != nil {
		return res, fmt.Errorf("spill attach: %w", err)
	}
	d, err := churnWorkload(ss.Session, calls, -1)
	ss.Close()
	res.tally(d, err)
	node(spillMember).setWakeFails(0)
	spillStats := pool.Stats()
	res.WakeFailures = spillStats.WakeFailures - statsBefore.WakeFailures

	// Wake storm: concurrent attachers aimed at one parked member must
	// coalesce on a single wake — exactly one modeled cold start, no
	// stampede — with the scripted wake failures retried inside it.
	node(wakeTarget).setWakeFails(wakeFails)
	wakeKeys := keysRankedOn(pool, wakeTarget, 4)
	var coldest atomic.Int64
	woutcomes := make([]outcome, len(wakeKeys))
	wg = sync.WaitGroup{}
	for i, key := range wakeKeys {
		wg.Add(1)
		go func(i int, key string) {
			defer wg.Done()
			start := time.Now()
			s, err := pool.Session(key, elasticSessionOpts(seed+300+int64(i)))
			attach := time.Since(start)
			if err != nil {
				woutcomes[i] = outcome{err: err}
				return
			}
			for {
				cur := coldest.Load()
				if int64(attach) <= cur || coldest.CompareAndSwap(cur, int64(attach)) {
					break
				}
			}
			digest, err := churnWorkload(s.Session, calls, -1)
			s.Close()
			woutcomes[i] = outcome{digest: digest, err: err}
		}(i, key)
	}
	wg.Wait()
	for _, o := range woutcomes {
		res.tally(o.digest, o.err)
	}
	wakeStats := pool.Stats()
	res.ColdStarts = wakeStats.ColdStarts - spillStats.ColdStarts
	res.WakeCoalesced = wakeStats.WakeCoalesced - spillStats.WakeCoalesced
	res.ColdAttachMS = float64(coldest.Load()) / float64(time.Millisecond)

	// Warm attach to the same (now awake) member: the cold start is
	// the difference, not the routing.
	warmKey := keysRankedOn(pool, wakeTarget, len(wakeKeys)+1)[len(wakeKeys)]
	warmStart := time.Now()
	ws, err := pool.Session(warmKey, elasticSessionOpts(seed+400))
	warm := time.Since(warmStart)
	if err != nil {
		return res, fmt.Errorf("warm attach: %w", err)
	}
	d, err = churnWorkload(ws.Session, calls, -1)
	ws.Close()
	res.tally(d, err)
	res.WarmAttachMS = float64(warm) / float64(time.Millisecond)

	// Registrar jitter (satellite): distinct members must draw
	// distinct renew cadences from their seeded streams. Two members
	// with equal beat counts over the same wall window would suggest
	// lockstep; we check the weaker, deterministic property that the
	// registrars' jitter streams diverge.
	res.HealedJitter = registrarsJittered(registrars)

	// Counters and end-state invariants.
	rstats := registry.Stats()
	res.Suspects = rstats.Suspects
	res.Evicted = rstats.Expired
	res.Retired = rstats.Deregistered
	poolStats := pool.Stats()
	res.Parked = poolStats.Parks
	res.RetireMoved = int(poolStats.Migrations)
	for name, n := range nodes {
		if n.isParked() || name == joiner {
			continue
		}
		res.LeasesLeft += n.srv.LeaseCount()
	}
	return res, nil
}

// tally folds one session outcome into the result.
func (r *ElasticResult) tally(digest uint64, err error) {
	if err != nil {
		r.Failed++
		return
	}
	r.Survivors++
	if digest != r.Digest {
		r.Mismatches++
	}
}

// waitFor polls cond every 5ms until it holds or the deadline passes.
func waitFor(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// memberPresent reports whether the pool currently has a member name.
func memberPresent(p *fleet.Pool, name string) bool {
	for _, st := range p.Members() {
		if st.Name == name {
			return true
		}
	}
	return false
}

// keysRankedOn scans for n distinct keys whose rendezvous ranking tops
// out on member name.
func keysRankedOn(p *fleet.Pool, name string, n int) []string {
	var keys []string
	for i := 0; len(keys) < n; i++ {
		key := fmt.Sprintf("%s-key-%d", name, i)
		if r := p.RankFor(key); len(r) > 0 && r[0] == name {
			keys = append(keys, key)
		}
	}
	return keys
}

// spillTarget finds a member other than avoid, plus a key whose
// ranking puts that member first and some third member (not avoid)
// second — so a failed wake spills without touching avoid.
func spillTarget(p *fleet.Pool, names []string, avoid string) (member, key string) {
	for _, name := range names {
		if name == avoid {
			continue
		}
		for i := 0; i < 1<<16; i++ {
			k := fmt.Sprintf("spill-%s-%d", name, i)
			r := p.RankFor(k)
			if len(r) >= 2 && r[0] == name && r[1] != avoid {
				return name, k
			}
		}
	}
	// Unreachable for any 3-member fleet; fall back to the first
	// non-avoid member with any key it tops.
	for _, name := range names {
		if name != avoid {
			return name, keysRankedOn(p, name, 1)[0]
		}
	}
	return names[0], "spill-fallback"
}

// registrarsJittered verifies the renewal cadence diverges across
// registrars: drawing from each one's seeded jitter stream must not
// yield the same interval everywhere — lockstep renewals would spike
// the registry every period.
func registrarsJittered(regs map[string]*fleet.Registrar) bool {
	seen := map[time.Duration]bool{}
	for _, reg := range regs {
		seen[reg.NextRenew()] = true
	}
	return len(seen) >= 2
}
