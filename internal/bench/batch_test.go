package bench

import "testing"

// The acceptance criterion of the batching work: on the RustyHermit
// platform, a batch size of at least 32 must improve the Fig 6c
// kernel-launch rate by at least 2x over the unbatched client.
func TestAblationBatchHermitSpeedupCriterion(t *testing.T) {
	points, err := AblationBatch(2_000, []int{0, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 10 { // 5 platforms x 2 sizes
		t.Fatalf("points = %d, want 10", len(points))
	}
	for _, pt := range points {
		if pt.CallsPerSec <= 0 || pt.TimeToSyncSec <= 0 {
			t.Fatalf("degenerate point: %+v", pt)
		}
	}
	got := BatchSpeedup(points, "Hermit", 32)
	if got < 2.0 {
		t.Fatalf("Hermit batch>=32 speedup = %.2fx, want >= 2x", got)
	}
	t.Logf("Hermit batch-32 speedup: %.2fx", got)
}

// Batching must help every platform monotonically in this sweep's
// range: more coalescing never makes the launch rate worse, and batch
// 1 stays within noise of unbatched (the queue adds no simulated
// cost of its own).
func TestAblationBatchShape(t *testing.T) {
	points, err := AblationBatch(1_000, []int{0, 1, 8, 64})
	if err != nil {
		t.Fatal(err)
	}
	byPlatform := map[string][]BatchPoint{}
	for _, pt := range points {
		byPlatform[pt.Platform] = append(byPlatform[pt.Platform], pt)
	}
	for platform, pts := range byPlatform {
		if len(pts) != 4 {
			t.Fatalf("%s: %d points", platform, len(pts))
		}
		unbatched, b1, b8, b64 := pts[0], pts[1], pts[2], pts[3]
		if ratio := b1.CallsPerSec / unbatched.CallsPerSec; ratio < 0.95 {
			t.Errorf("%s: batch 1 regresses launch rate to %.2fx of unbatched", platform, ratio)
		}
		if b8.CallsPerSec <= b1.CallsPerSec || b64.CallsPerSec <= b8.CallsPerSec {
			t.Errorf("%s: launch rate not monotone: 1->%.0f 8->%.0f 64->%.0f",
				platform, b1.CallsPerSec, b8.CallsPerSec, b64.CallsPerSec)
		}
	}
}
