package bench

import (
	"cricket/internal/core"
	"cricket/internal/cricket"
	"cricket/internal/cubin"
	"cricket/internal/cuda"
	"cricket/internal/gpu"
	"cricket/internal/guest"
	"cricket/internal/obs"
)

// LatencyProfile runs a mixed CUDA workload on the given platform with
// full observability enabled — one collector shared by the client, the
// server, and the device layer — and returns the per-procedure latency
// metrics (p50/p90/p99 and friends) it gathered.
//
// The workload covers the call shapes the paper's evaluation exercises:
// topology queries, alloc/free churn, bulk transfers both ways, and
// kernel launches issued both as synchronous round trips and through
// the BATCH_EXEC pipeline, so batched entries show up under their
// logical procedures.
func LatencyProfile(p guest.Platform, calls int) (obs.Metrics, error) {
	if calls <= 0 {
		calls = 1000
	}
	col := cricket.NewCollector(0)

	cl := core.NewCluster()
	defer cl.Close()
	cl.Cricket.SetObserver(col)

	run := func(opts cricket.Options, batched bool) error {
		opts.Obs = col
		vg, err := cl.ConnectOpts(p, opts)
		if err != nil {
			return err
		}
		defer vg.Close()
		c := vg.Raw()

		for i := 0; i < calls; i++ {
			if _, err := c.GetDeviceCount(); err != nil {
				return err
			}
		}
		for i := 0; i < calls/2; i++ {
			ptr, err := c.Malloc(1 << 16)
			if err != nil {
				return err
			}
			if err := c.Free(ptr); err != nil {
				return err
			}
		}

		var fb cubin.FatBinary
		fb.AddImage(cuda.BuiltinImage(80), true)
		mod, err := vg.LoadModule(fb.Encode())
		if err != nil {
			return err
		}
		f, err := mod.Function(cuda.KernelVectorAdd)
		if err != nil {
			return err
		}
		const n = 256
		a, err := vg.Alloc(n * 4)
		if err != nil {
			return err
		}
		b, err := vg.Alloc(n * 4)
		if err != nil {
			return err
		}
		out, err := vg.Alloc(n * 4)
		if err != nil {
			return err
		}
		host := make([]byte, n*4)
		for i := range host {
			host[i] = byte(i)
		}
		if err := a.Write(host); err != nil {
			return err
		}
		if err := b.Write(host); err != nil {
			return err
		}
		args := cuda.NewArgBuffer().Ptr(a.Ptr()).Ptr(b.Ptr()).Ptr(out.Ptr()).I32(n).Bytes()
		grid := gpu.Dim3{X: 1, Y: 1, Z: 1}
		block := gpu.Dim3{X: 256, Y: 1, Z: 1}
		for i := 0; i < calls; i++ {
			if err := c.LaunchKernel(f, grid, block, 0, 0, args); err != nil {
				return err
			}
		}
		if batched {
			// Drain the queue so every entry's round trip lands in the
			// histograms before the client closes.
			if err := c.DeviceSynchronize(); err != nil {
				return err
			}
		}
		if _, err := out.Read(); err != nil {
			return err
		}
		return nil
	}

	if err := run(cricket.Options{}, false); err != nil {
		return obs.Metrics{}, err
	}
	if err := run(cricket.Options{Batch: 16}, true); err != nil {
		return obs.Metrics{}, err
	}
	return col.Metrics(), nil
}
