package bench

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cricket/internal/cricket"
	"cricket/internal/cuda"
	"cricket/internal/gpu"
	"cricket/internal/guest"
	"cricket/internal/obs"
	"cricket/internal/oncrpc"
	"cricket/internal/tune"
)

// This file is the self-tuning-datapath ablation: the same open-loop
// offered-load trace is replayed against three configurations of one
// governed server, and the only difference between them is who picks
// the concurrency operating point.
//
//   - static-small pins the client window at 2: a hand-tuned "safe"
//     config that protects latency by leaving throughput on the table.
//   - static-large pins the window at the maximum: a hand-tuned
//     "fast" config that buys throughput with a standing queue.
//   - adaptive runs the tune.Window controller on the client and the
//     server's admission AutoTuner together, and has to *find* the
//     knee that the static configs guess at.
//
// The load is open-loop on purpose. A closed loop (fixed worker
// count, back-to-back calls) lets Little's law hide the cost of a
// queue: throughput looks identical whether calls wait in line or
// not. With arrivals paced by a clock, an oversized window shows up
// exactly where it hurts — in the p99 — while an undersized one shows
// up as drops. The server models execution with a K-slot semaphore
// and a fixed service time, so the latency/concurrency curve has a
// real knee at K instead of being flat noise.
//
// Arrivals that find the datapath saturated are dropped at the edge:
// a new call is admitted only while the number outstanding is below
// a small multiple of the *current* window, so the queue a config tolerates scales
// with the operating point it chose. That is the whole bet of the
// adaptive config — a well-placed window keeps queues short enough
// that served throughput stays at capacity while the tail stays near
// the service time.

// AdaptivePhase is one segment of the offered-load trace.
type AdaptivePhase struct {
	Name     string
	Interval time.Duration // arrival spacing (open loop)
	Arrivals int
}

// AdaptiveConfig sizes the ablation. The zero value selects defaults
// scaled for `make bench`; CI passes a smaller Arrivals.
type AdaptiveConfig struct {
	// Arrivals is the per-phase arrival count (default 2500).
	Arrivals int
	// ExecSlots is K in the server's K-slot execution model (default 4).
	ExecSlots int
	// Service is the modeled per-call device time (default 200µs).
	Service time.Duration
	// Sessions is the client session pool size (default 3*MaxWindow).
	Sessions int
	// MaxWindow bounds the client window (default 32); static-large
	// pins there.
	MaxWindow int
	// Seed feeds the session RNGs.
	Seed int64
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Arrivals <= 0 {
		c.Arrivals = 2500
	}
	if c.ExecSlots <= 0 {
		c.ExecSlots = 4
	}
	if c.Service <= 0 {
		// Coarse enough that sleep granularity (~100µs jitter on a busy
		// Go runtime) stays small relative to the modeled service time.
		c.Service = time.Millisecond
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 32
	}
	if c.Sessions <= 0 {
		c.Sessions = 3 * c.MaxWindow
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// phases builds the shifting offered-load trace: under, over, and
// near capacity, where capacity is ExecSlots/Service calls per
// second.
func (c AdaptiveConfig) phases() []AdaptivePhase {
	slot := c.Service / time.Duration(c.ExecSlots) // spacing at exactly capacity
	return []AdaptivePhase{
		{Name: "warm", Interval: 2 * slot, Arrivals: c.Arrivals},     // 0.5x capacity
		{Name: "surge", Interval: slot / 2, Arrivals: c.Arrivals},    // 2x capacity
		{Name: "calm", Interval: 3 * slot / 2, Arrivals: c.Arrivals}, // 0.66x capacity
	}
}

// AdaptiveRun is one configuration's outcome over the full trace.
type AdaptiveRun struct {
	Name    string
	Served  int // calls completed successfully
	Dropped int // arrivals shed at the client edge (outstanding bound)
	Failed  int // calls that exhausted their attempt budget

	P50, P99   time.Duration // end-to-end latency of served calls
	Throughput float64       // served calls per second of trace time

	Overloads uint64 // server sheds absorbed by session retries

	FinalWindow    int // client window when the trace ended
	WindowGrows    uint64
	WindowShrinks  uint64
	WindowBackoffs uint64
	WindowSamples  uint64 // latency observations folded into the controller

	ServerMaxInflight int    // server admission ceiling when the trace ended
	TunerGrows        uint64 // adaptive run only
	TunerShrinks      uint64
	TunerIntervals    uint64
}

// AdaptiveResult is the full ablation: the trace and one run per
// configuration.
type AdaptiveResult struct {
	ArrivalsPerPhase int
	ExecSlots        int
	Service          time.Duration
	Phases           []AdaptivePhase
	Runs             []AdaptiveRun
}

func (r AdaptiveResult) run(name string) *AdaptiveRun {
	for i := range r.Runs {
		if r.Runs[i].Name == name {
			return &r.Runs[i]
		}
	}
	return nil
}

// Violations checks the ablation's claim: the adaptive config must
// match the best static throughput while beating the
// best-throughput static config's tail, and both controllers must
// have actually moved. Empty means the claim held.
func (r AdaptiveResult) Violations() []string {
	var v []string
	adaptive := r.run("adaptive")
	if adaptive == nil {
		return []string{"no adaptive run recorded"}
	}
	var bestStatic *AdaptiveRun
	for i := range r.Runs {
		run := &r.Runs[i]
		if run.Served == 0 {
			v = append(v, fmt.Sprintf("%s served nothing", run.Name))
		}
		if run.Name == "adaptive" {
			continue
		}
		if bestStatic == nil || run.Served > bestStatic.Served {
			bestStatic = run
		}
	}
	if bestStatic == nil {
		return append(v, "no static baseline recorded")
	}
	if 100*adaptive.Served < 85*bestStatic.Served {
		v = append(v, fmt.Sprintf("adaptive served %d, under 85%% of best static %s's %d",
			adaptive.Served, bestStatic.Name, bestStatic.Served))
	}
	if adaptive.P99 > bestStatic.P99 {
		v = append(v, fmt.Sprintf("adaptive p99 %v exceeds best-throughput static %s's %v",
			adaptive.P99, bestStatic.Name, bestStatic.P99))
	}
	// A window that held its initial size all trace is a legitimate
	// outcome (it started at the knee); a window that never *measured*
	// is a wiring bug.
	if adaptive.WindowSamples == 0 {
		v = append(v, "adaptive client window never observed a call")
	}
	if adaptive.TunerIntervals == 0 {
		v = append(v, "server auto-tuner never ran a control interval")
	}
	return v
}

// Adaptive replays the offered-load trace against the three
// configurations and returns the ablation.
func Adaptive(cfg AdaptiveConfig) (AdaptiveResult, error) {
	cfg = cfg.withDefaults()
	res := AdaptiveResult{
		ArrivalsPerPhase: cfg.Arrivals,
		ExecSlots:        cfg.ExecSlots,
		Service:          cfg.Service,
		Phases:           cfg.phases(),
	}
	runs := []struct {
		name     string
		window   func() *tune.Window
		autotune bool
	}{
		{"static-small", func() *tune.Window { return tune.Static(2) }, false},
		{"static-large", func() *tune.Window { return tune.Static(cfg.MaxWindow) }, false},
		{"adaptive", func() *tune.Window {
			// Inflate and Step are loosened from the controller defaults
			// for the same reason as the server tuner's: sleep-modeled
			// service times carry scheduler jitter that a real device's
			// latency distribution would not, and a too-eager tail gate
			// turns steady-state saturation into a shrink/regrow cycle.
			return tune.NewWindow(tune.WindowConfig{
				Min: 2, Max: cfg.MaxWindow, Initial: 8,
				Inflate: 4, Step: 2,
			})
		}, true},
	}
	for _, rc := range runs {
		run, err := adaptiveRun(cfg, rc.name, rc.window(), rc.autotune)
		if err != nil {
			return res, fmt.Errorf("%s: %w", rc.name, err)
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

// adaptiveRun replays the trace once against a fresh governed server.
func adaptiveRun(cfg AdaptiveConfig, name string, win *tune.Window, autotune bool) (AdaptiveRun, error) {
	run := AdaptiveRun{Name: name}

	rt := cuda.NewRuntime(nil, gpu.New(gpu.SpecA100))
	srv := cricket.NewServer(rt)
	srv.SetLimits(cricket.Limits{
		MaxClients:  cfg.Sessions + 2,
		MaxInflight: 2 * cfg.MaxWindow, // static runs: client window is the governor
		RetryAfter:  200 * time.Microsecond,
	})
	// The execution model: K slots of fixed service time. This is what
	// puts a knee in the latency/concurrency curve — beyond K the only
	// thing more concurrency buys is queueing.
	sem := make(chan struct{}, cfg.ExecSlots)
	srv.SetExecModel(func() {
		sem <- struct{}{}
		time.Sleep(cfg.Service)
		<-sem
	})
	var tuner *cricket.AutoTuner
	if autotune {
		srv.SetObserver(cricket.NewCollector(16))
		var err error
		tuner, err = srv.StartAutoTuner(cricket.AutoTuneConfig{
			// Min pins the ceiling at twice the device's concurrency: the
			// tuner may convert deep queueing into sheds, but it must
			// never under-admit below the client's useful operating
			// point, or shed-retry storms feed back into the client
			// controller and both spiral down. Inflate is loosened above
			// its default because sleep-modeled service times carry
			// scheduler jitter a real device would not.
			Admission: tune.AdmissionConfig{
				Min:     2 * cfg.ExecSlots,
				Max:     2 * cfg.MaxWindow,
				Initial: 4 * cfg.ExecSlots,
				Inflate: 8,
			},
			Interval: 10 * time.Millisecond,
		})
		if err != nil {
			return run, err
		}
		defer tuner.Stop()
	}
	rpcSrv := oncrpc.NewServer()
	srv.Attach(rpcSrv)
	defer rpcSrv.Close()

	// The session pool: arrivals borrow a connected session, issue one
	// call through the shared window, and return it. An empty pool is
	// never the drop signal — the outstanding bound below is — so the
	// pool is sized past the worst-case bound.
	pool := make(chan *cricket.Session, cfg.Sessions)
	for i := 0; i < cfg.Sessions; i++ {
		s, err := cricket.NewSession(cricket.SessionOptions{
			Options: cricket.Options{Platform: guest.NativeRust()},
			Redial: func() (io.ReadWriteCloser, error) {
				cli, sc := net.Pipe()
				go rpcSrv.ServeConn(sc)
				return cli, nil
			},
			Nonce:       uint64(i) + 1,
			Seed:        cfg.Seed + int64(i),
			Window:      win,
			MaxAttempts: 8,
			BackoffBase: 200 * time.Microsecond,
			BackoffMax:  5 * time.Millisecond,
		})
		if err != nil {
			return run, err
		}
		defer s.Close()
		pool <- s
	}

	hist := &obs.Histogram{}
	var served, dropped, failed atomic.Int64
	var outstanding atomic.Int64
	var wg sync.WaitGroup

	start := time.Now()
	for _, ph := range cfg.phases() {
		next := time.Now()
		for i := 0; i < ph.Arrivals; i++ {
			next = next.Add(ph.Interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			// Edge admission: the queue an arrival may join scales with
			// the operating point in force right now. A config that
			// chose a small window drops early and keeps its tail short;
			// one that chose a large window queues deep and pays in p99.
			if int(outstanding.Load()) >= 3*win.Window() {
				dropped.Add(1)
				continue
			}
			var s *cricket.Session
			select {
			case s = <-pool:
			default:
				dropped.Add(1)
				continue
			}
			outstanding.Add(1)
			wg.Add(1)
			t0 := time.Now()
			go func() {
				defer wg.Done()
				_, err := s.GetDeviceCount()
				d := time.Since(t0)
				outstanding.Add(-1)
				pool <- s
				if err != nil {
					failed.Add(1)
					return
				}
				served.Add(1)
				hist.Observe(d)
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	run.Served = int(served.Load())
	run.Dropped = int(dropped.Load())
	run.Failed = int(failed.Load())
	snap := hist.Snapshot()
	run.P50 = snap.Quantile(0.50)
	run.P99 = snap.Quantile(0.99)
	if sec := elapsed.Seconds(); sec > 0 {
		run.Throughput = float64(run.Served) / sec
	}
	ws := win.Stats()
	run.FinalWindow = ws.Window
	run.WindowGrows = ws.Grows
	run.WindowShrinks = ws.Shrinks
	run.WindowBackoffs = ws.Backoffs
	run.WindowSamples = ws.Samples
	run.ServerMaxInflight = srv.Limits().MaxInflight
	if tuner != nil {
		ts := tuner.Stats()
		run.TunerGrows = ts.Grows
		run.TunerShrinks = ts.Shrinks
		run.TunerIntervals = ts.Intervals
	}
	// Session-level overloads: sheds the retry loop absorbed.
	close(pool)
	for s := range pool {
		run.Overloads += s.SessionStats().Overloads
	}
	return run, nil
}
