package bench

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sync"
	"time"

	"cricket/internal/cricket"
	"cricket/internal/cuda"
	"cricket/internal/fleet"
	"cricket/internal/gpu"
	"cricket/internal/guest"
	"cricket/internal/netsim"
)

// This file is the live-migration storm: sessions homed on one of
// three members run a workload with a large cold region and a small
// hot working set; mid-storm the pool rebalances, live-migrating a
// session off the busiest member. The gates are the tentpole's
// acceptance criteria: zero lost sessions, every digest bit-identical
// to a no-migration run, the stop-the-world cutover pause bounded,
// and the delta checkpoint shipping at most half of what a full
// stop-the-world checkpoint would have. A second phase kills the
// migration target mid-copy and requires a clean abort back to the
// source.

// MigrateResult summarizes one migration storm.
type MigrateResult struct {
	Members  int
	Sessions int
	Calls    int

	Survivors  int
	Failed     int
	Mismatches int
	Digest     uint64 // no-migration baseline digest

	// The rebalance migration performed mid-storm.
	Migrations   uint64 // completed planned migrations (gate: >= 1)
	MigratedKey  string
	From, To     string
	Rounds       int
	FullBytes    uint64 // device state at cutover (full-checkpoint cost)
	PrecopyBytes uint64 // shipped live, before the pause
	DeltaBytes   uint64 // shipped inside the pause (gate: *2 <= FullBytes)
	PauseMS      float64

	// PauseGateMS is the cutover-pause bound the run was gated on.
	PauseGateMS float64

	// Abort phase: a target killed mid-copy must abort back to the
	// source without corruption, and a retry must succeed.
	AbortClean      bool
	AbortRetryOK    bool
	AbortDigestOK   bool
	AbortFailReason string
}

// Violations lists every breached migration invariant; empty means
// the storm upheld all of them.
func (r MigrateResult) Violations() []string {
	var v []string
	if r.Survivors != r.Sessions {
		v = append(v, fmt.Sprintf("lost sessions: %d of %d survived (%d failed)",
			r.Survivors, r.Sessions, r.Failed))
	}
	if r.Mismatches > 0 {
		v = append(v, fmt.Sprintf("%d digest(s) differ from the no-migration run", r.Mismatches))
	}
	if r.Migrations < 1 {
		v = append(v, "rebalance performed no migration (storm never moved a session)")
	}
	if r.Migrations >= 1 && r.DeltaBytes*2 > r.FullBytes {
		v = append(v, fmt.Sprintf("cutover delta %d B > 50%% of full checkpoint %d B", r.DeltaBytes, r.FullBytes))
	}
	if r.Migrations >= 1 && r.PauseMS > r.PauseGateMS {
		v = append(v, fmt.Sprintf("cutover pause %.2fms exceeds the %.0fms gate", r.PauseMS, r.PauseGateMS))
	}
	if !r.AbortClean {
		v = append(v, "mid-copy target kill did not abort cleanly: "+r.AbortFailReason)
	}
	if !r.AbortDigestOK {
		v = append(v, "source state corrupted by the aborted migration")
	}
	if !r.AbortRetryOK {
		v = append(v, "migration retry after the abort failed")
	}
	return v
}

// migrateWorkload is the storm's deterministic application: a 1 MiB
// cold "weights" region uploaded once, then a hot 32x32 matrixMul
// loop re-uploading its small inputs every iteration. The cold/hot
// split is what makes delta checkpoints measurable — pre-copy ships
// the megabyte while the session serves, and only the hot kilobytes
// can be dirty at cutover. Both regions fold into the digest, so a
// migration that corrupts either is caught.
func migrateWorkload(s *cricket.Session, calls int, hook func(i int)) (uint64, error) {
	const dim = 32
	size := uint64(dim * dim * 4)
	const coldSize = 1 << 20

	m, err := s.ModuleLoad(churnFatbin())
	if err != nil {
		return 0, err
	}
	f, err := s.ModuleGetFunction(m, cuda.KernelMatrixMul)
	if err != nil {
		return 0, err
	}
	cold, err := s.Malloc(coldSize)
	if err != nil {
		return 0, err
	}
	weights := make([]byte, coldSize)
	for i := range weights {
		weights[i] = byte(i*29 + i>>10)
	}
	if err := s.MemcpyHtoD(cold, weights); err != nil {
		return 0, err
	}
	dA, err := s.Malloc(size)
	if err != nil {
		return 0, err
	}
	dB, err := s.Malloc(size)
	if err != nil {
		return 0, err
	}
	dC, err := s.Malloc(size)
	if err != nil {
		return 0, err
	}
	host := make([]byte, size)
	for i := 0; i < dim*dim; i++ {
		binary.LittleEndian.PutUint32(host[i*4:], math.Float32bits(float32(i%9)+0.125))
	}
	args := cuda.NewArgBuffer().Ptr(dC).Ptr(dA).Ptr(dB).I32(dim).I32(dim).Bytes()
	grid := gpu.Dim3{X: 1, Y: 1, Z: 1}
	block := gpu.Dim3{X: 32, Y: 32, Z: 1}

	h := fnv.New64a()
	for i := 0; i < calls; i++ {
		if hook != nil {
			hook(i)
		}
		if err := s.MemcpyHtoD(dA, host); err != nil {
			return 0, fmt.Errorf("call %d upload A: %w", i, err)
		}
		if err := s.MemcpyHtoD(dB, host); err != nil {
			return 0, fmt.Errorf("call %d upload B: %w", i, err)
		}
		if err := s.LaunchKernel(f, grid, block, 0, 0, args); err != nil {
			return 0, fmt.Errorf("call %d launch: %w", i, err)
		}
		if i%16 == 15 {
			if err := s.DeviceSynchronize(); err != nil {
				return 0, err
			}
			out, err := s.MemcpyDtoH(dC, size)
			if err != nil {
				return 0, fmt.Errorf("call %d readback: %w", i, err)
			}
			h.Write(out)
		}
	}
	if err := s.DeviceSynchronize(); err != nil {
		return 0, err
	}
	out, err := s.MemcpyDtoH(dC, size)
	if err != nil {
		return 0, err
	}
	h.Write(out)
	// The cold region rides into the digest too: a migration that
	// shipped it wrong (or not at all) breaks bit-identity.
	back, err := s.MemcpyDtoH(cold, coldSize)
	if err != nil {
		return 0, fmt.Errorf("cold readback: %w", err)
	}
	h.Write(back)
	return h.Sum64(), nil
}

// Migrate runs the live-migration storm and the mid-copy abort phase.
func Migrate(sessions, calls int, seed int64, pauseGateMS float64) (MigrateResult, error) {
	if sessions <= 0 {
		sessions = 6
	}
	if calls <= 0 {
		calls = 96
	}
	if pauseGateMS <= 0 {
		pauseGateMS = 200
	}
	res := MigrateResult{Members: 3, Sessions: sessions, Calls: calls, PauseGateMS: pauseGateMS}

	// No-migration baseline digest.
	base := newRestartableServer()
	bs, err := cricket.NewSession(cricket.SessionOptions{
		Options: cricket.Options{Platform: guest.NativeRust()},
		Redial:  base.redial,
		Seed:    1,
	})
	if err != nil {
		base.close()
		return res, err
	}
	res.Digest, err = migrateWorkload(bs, calls, nil)
	bs.Close()
	base.close()
	if err != nil {
		return res, fmt.Errorf("baseline workload: %w", err)
	}

	nodes := make([]*fleetNode, 0, 3)
	members := make([]fleet.Member, 0, 3)
	for i := 0; i < 3; i++ {
		n, stopSweep := newFleetNode(fmt.Sprintf("gpu%d", i), time.Second)
		defer stopSweep()
		defer n.close()
		nodes = append(nodes, n)
		members = append(members, n.member())
	}
	pool, err := fleet.New(fleet.Options{
		ProbeInterval: 5 * time.Millisecond,
		DownAfter:     2,
		UpAfter:       2,
	}, members...)
	if err != nil {
		return res, err
	}
	stopProber := pool.StartProber()
	defer stopProber()

	// Home every session on the same member so it is unambiguously the
	// busiest and Rebalance has a spread to fix.
	home := nodes[0].name
	keys := make([]string, 0, sessions)
	for i := 0; len(keys) < sessions; i++ {
		k := fmt.Sprintf("mig-%d", i)
		if pool.RankFor(k)[0] == home {
			keys = append(keys, k)
		}
	}

	// The first session to cross a third of its calls triggers one
	// rebalance: the pool live-migrates a session off the busiest
	// member while every workload (including the victim's) keeps
	// running.
	var rebOnce sync.Once
	var rebErr error
	rebalanceAt := calls / 3
	rebalance := func() {
		rebOnce.Do(func() {
			rep, err := pool.Rebalance()
			if err != nil {
				rebErr = err
				return
			}
			if rep != nil {
				res.MigratedKey, res.From, res.To = rep.Key, rep.From, rep.To
				res.Rounds = rep.Report.Rounds
				res.FullBytes = rep.Report.FullBytes
				res.PrecopyBytes = rep.Report.PrecopyBytes
				res.DeltaBytes = rep.Report.DeltaBytes
				res.PauseMS = float64(rep.Report.Pause) / float64(time.Millisecond)
			}
		})
	}

	type outcome struct {
		digest uint64
		err    error
	}
	outcomes := make([]outcome, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := pool.Session(keys[i], cricket.SessionOptions{
				Options:     cricket.Options{Platform: guest.NativeRust()},
				Seed:        seed + int64(i) + 1,
				MaxAttempts: 25,
				BackoffBase: 500 * time.Microsecond,
				BackoffMax:  10 * time.Millisecond,
			})
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			fired := false
			digest, err := migrateWorkload(s.Session, calls, func(call int) {
				if !fired && call == rebalanceAt {
					fired = true
					rebalance()
				}
			})
			s.Close()
			outcomes[i] = outcome{digest: digest, err: err}
		}(i)
	}
	wg.Wait()
	if rebErr != nil {
		return res, fmt.Errorf("rebalance: %w", rebErr)
	}
	res.Migrations = pool.Stats().Migrations
	for _, o := range outcomes {
		switch {
		case o.err != nil:
			res.Failed++
		default:
			res.Survivors++
			if o.digest != res.Digest {
				res.Mismatches++
			}
		}
	}

	// Abort phase: the target dies mid-pre-copy. The migration must
	// fail without touching source state, the workload must finish on
	// the source bit-identically, and a retry against a healed target
	// must complete.
	if err := res.abortPhase(calls, seed); err != nil {
		return res, err
	}
	return res, nil
}

// abortPhase runs the mid-copy target-kill scenario on a private
// source/target pair.
func (r *MigrateResult) abortPhase(calls int, seed int64) error {
	src, stopSrc := newFleetNode("abort-src", 0)
	defer stopSrc()
	defer src.close()
	tgt, stopTgt := newFleetNode("abort-tgt", 0)
	defer stopTgt()
	defer tgt.close()

	s, err := cricket.NewSession(cricket.SessionOptions{
		Options: cricket.Options{Platform: guest.NativeRust()},
		Redial:  src.dial,
		Seed:    seed + 101,
	})
	if err != nil {
		return err
	}
	defer s.Close()

	// Upload the workload's cold region first so there is real bulk to
	// interrupt, then attempt the migration over a connection that
	// drops a quarter-megabyte in — past the handshake and staging,
	// well short of the megabyte of pre-copy.
	faulty := func() (io.ReadWriteCloser, error) {
		conn, err := tgt.dial()
		if err != nil {
			return nil, err
		}
		return netsim.NewFaultConn(conn, netsim.Fault{AfterBytes: 256 << 10, Kind: netsim.FaultDrop}), nil
	}
	digest := make(chan uint64, 1)
	werr := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		var once sync.Once
		d, err := migrateWorkload(s, calls, func(i int) {
			once.Do(func() { close(started) })
		})
		digest <- d
		werr <- err
	}()
	<-started
	if _, err := s.MigrateVia("abort-tgt", faulty); err == nil {
		r.AbortFailReason = "migration over a dying target connection reported success"
		return nil
	}
	r.AbortClean = true
	if err := <-werr; err != nil {
		r.AbortFailReason = fmt.Sprintf("workload failed after abort: %v", err)
		return nil
	}
	if d := <-digest; d == r.Digest {
		r.AbortDigestOK = true
	}

	// Retry against the healed target must complete and leave the
	// session serving there.
	if _, err := s.MigrateVia("abort-tgt", tgt.dial); err != nil {
		r.AbortFailReason = fmt.Sprintf("retry after abort: %v", err)
		return nil
	}
	src.kill()
	if err := s.Ping(); err != nil {
		r.AbortFailReason = fmt.Sprintf("session dead on target after retry: %v", err)
		return nil
	}
	r.AbortRetryOK = true
	return nil
}
