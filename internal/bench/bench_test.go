package bench

import (
	"fmt"
	"strings"
	"testing"

	"cricket/internal/apps"
	"cricket/internal/guest"
)

// rowMap indexes rows by platform.
func rowMap(rows []Row) map[string]float64 {
	m := make(map[string]float64, len(rows))
	for _, r := range rows {
		m[r.Platform] = r.Value
	}
	return m
}

func TestTable1Render(t *testing.T) {
	out := Table1()
	for _, want := range []string{"Rocky Linux", "Fedora VM", "Unikraft", "Hermit", "QEMU", "virtio", "native"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 6 {
		t.Errorf("Table1 has %d lines", lines)
	}
}

func TestFig5CIShape(t *testing.T) {
	for name, run := range map[string]func(Scale) ([]Row, error){
		"5a-matrixMul": Fig5a, "5b-linearSolver": Fig5b, "5c-histogram": Fig5c,
	} {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			rows, err := run(ScaleCI)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != 5 {
				t.Fatalf("rows = %d", len(rows))
			}
			m := rowMap(rows)
			// Every virtualized platform is slower than native Rust.
			for _, p := range []string{"Linux VM", "Unikraft", "Hermit"} {
				if m[p] <= m["Rust"] {
					t.Errorf("%s: %s (%.4fs) not slower than native (%.4fs)", name, p, m[p], m["Rust"])
				}
			}
			// C is never faster than Rust (same stack, extra app costs).
			if m["C"] < m["Rust"] {
				t.Errorf("%s: C faster than Rust", name)
			}
			t.Logf("%s: C=%.4f Rust=%.4f VM=%.4f UK=%.4f Hermit=%.4f",
				name, m["C"], m["Rust"], m["Linux VM"], m["Unikraft"], m["Hermit"])
		})
	}
}

func TestFig6Shape(t *testing.T) {
	const calls = 2000
	for _, api := range []MicroAPI{MicroGetDeviceCount, MicroMallocFree, MicroKernelLaunch} {
		api := api
		t.Run(api.String(), func(t *testing.T) {
			rows, err := Fig6(api, calls)
			if err != nil {
				t.Fatal(err)
			}
			m := rowMap(rows)
			// Paper: VM slowest everywhere; Hermit smallest guest
			// overhead but still more than double native; C ≈ Rust
			// except for launches where Rust is ~6.3 % faster.
			if !(m["Linux VM"] > m["Unikraft"] && m["Unikraft"] > m["Hermit"]) {
				t.Errorf("ordering: VM=%.4f UK=%.4f Hermit=%.4f", m["Linux VM"], m["Unikraft"], m["Hermit"])
			}
			if m["Hermit"] <= 2*m["Rust"] {
				t.Errorf("Hermit %.4f not more than double native %.4f", m["Hermit"], m["Rust"])
			}
			if api == MicroKernelLaunch {
				gain := (m["C"] - m["Rust"]) / m["C"]
				if gain < 0.02 || gain > 0.12 {
					t.Errorf("Rust launch advantage = %.1f%%, paper reports ≈6.3%%", gain*100)
				}
			} else if m["C"] != m["Rust"] {
				t.Errorf("C (%.4f) != Rust (%.4f) for %s", m["C"], m["Rust"], api)
			}
		})
	}
}

func TestFig7Shape(t *testing.T) {
	const bytes = 64 << 20
	h2d, err := Fig7(apps.HostToDevice, bytes, 2)
	if err != nil {
		t.Fatal(err)
	}
	d2h, err := Fig7(apps.DeviceToHost, bytes, 2)
	if err != nil {
		t.Fatal(err)
	}
	mh, md := rowMap(h2d), rowMap(d2h)
	t.Logf("H2D: %+v", mh)
	t.Logf("D2H: %+v", md)
	// Natives fastest; VM ≥ 75 %; Hermit D2H ≈ 10 % of native;
	// unikernels far below the VM.
	if mh["Rust"] != mh["C"] || md["Rust"] != md["C"] {
		t.Error("native C and Rust bandwidths differ")
	}
	if mh["Linux VM"] < 0.75*mh["Rust"] || md["Linux VM"] < 0.7*md["Rust"] {
		t.Errorf("VM retention too low: %.0f/%.0f vs native %.0f/%.0f",
			mh["Linux VM"], md["Linux VM"], mh["Rust"], md["Rust"])
	}
	ratio := md["Hermit"] / md["Rust"]
	if ratio < 0.06 || ratio > 0.14 {
		t.Errorf("Hermit D2H ratio = %.3f, paper ≈ 0.098", ratio)
	}
	if mh["Unikraft"] > 0.5*mh["Linux VM"] || md["Unikraft"] > 0.5*md["Linux VM"] {
		t.Error("Unikraft not far below VM")
	}
}

func TestAblationOffloadsShape(t *testing.T) {
	rows, err := AblationOffloads(64<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := rowMap(rows)
	on := m["Linux VM (offloads on), host-to-device"]
	off := m["Linux VM (tso/tx-csum/sg off), host-to-device"]
	if off >= on/2 {
		t.Errorf("H2D barely affected by disabling offloads: %.0f -> %.0f MiB/s", on, off)
	}
	d2hOn := m["Linux VM (offloads on), device-to-host"]
	d2hOff := m["Linux VM (tso/tx-csum/sg off), device-to-host"]
	if d2hOff < d2hOn*0.95 {
		t.Errorf("D2H should be barely affected: %.0f -> %.0f MiB/s", d2hOn, d2hOff)
	}
}

func TestAblationTransferMethodsShape(t *testing.T) {
	rows, err := AblationTransferMethods(32 << 20)
	if err != nil {
		t.Fatal(err)
	}
	m := rowMap(rows)
	if !(m["parallel-sockets"] > m["rpc-args"]) {
		t.Errorf("parallel sockets (%.0f) not faster than rpc args (%.0f)", m["parallel-sockets"], m["rpc-args"])
	}
	if !(m["rdma"] > m["parallel-sockets"] && m["shared-memory"] > m["parallel-sockets"]) {
		t.Errorf("direct methods not fastest: %+v", m)
	}
}

func TestAblationCubinCompressionShape(t *testing.T) {
	rows, err := AblationCubinCompression()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	var raw, comp Row
	for _, r := range rows {
		if r.Platform == "raw" {
			raw = r
		} else {
			comp = r
		}
	}
	// The compressed image ships fewer bytes (the point of the
	// paper's decompression support).
	if !strings.Contains(comp.Detail, "image bytes") || !strings.Contains(raw.Detail, "image bytes") {
		t.Fatalf("details: %q %q", raw.Detail, comp.Detail)
	}
	var rawBytes, compBytes int
	if _, err := fmt.Sscanf(raw.Detail, "%d image bytes", &rawBytes); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscanf(comp.Detail, "%d image bytes", &compBytes); err != nil {
		t.Fatal(err)
	}
	if compBytes >= rawBytes {
		t.Errorf("compressed image %d not smaller than raw %d", compBytes, rawBytes)
	}
}

func TestAblationMTUShape(t *testing.T) {
	rows, err := AblationMTU()
	if err != nil {
		t.Fatal(err)
	}
	m := rowMap(rows)
	if m["Hermit, MTU 9000"] <= m["Hermit, MTU 1500"] {
		t.Errorf("jumbo frames not faster: %+v", m)
	}
}

func TestRender(t *testing.T) {
	out := Render("Figure X", "s", []Row{{Platform: "Rust", Value: 1.5, Detail: "d"}})
	if !strings.Contains(out, "Figure X") || !strings.Contains(out, "Rust") || !strings.Contains(out, "1.500 s") {
		t.Fatalf("render output:\n%s", out)
	}
}

func TestAblationFutureWorkShape(t *testing.T) {
	rows, err := AblationFutureWork(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	m := rowMap(rows)
	t.Logf("future-work H2D MiB/s: %+v", m)
	// TSO must increase Hermit bandwidth significantly (paper §5
	// "expect to increase performance significantly"), vDPA further,
	// and neither exceeds native.
	if m["Hermit (TSO)"] < 1.2*m["Hermit"] {
		t.Errorf("TSO gain too small: %.0f vs %.0f", m["Hermit (TSO)"], m["Hermit"])
	}
	if m["Hermit (TSO) (vDPA)"] <= m["Hermit (TSO)"] {
		t.Errorf("vDPA no further gain: %.0f vs %.0f", m["Hermit (TSO) (vDPA)"], m["Hermit (TSO)"])
	}
	if m["Hermit (TSO) (vDPA)"] > m["Rust"] {
		t.Errorf("projected Hermit above native: %.0f vs %.0f", m["Hermit (TSO) (vDPA)"], m["Rust"])
	}
}

func TestWithTSOAndVDPAVariants(t *testing.T) {
	h := guest.RustyHermit()
	tso := guest.WithTSO(h)
	if h.Stack.Offloads == tso.Stack.Offloads {
		t.Fatal("WithTSO changed nothing")
	}
	if h.Stack.Offloads != guest.RustyHermit().Stack.Offloads {
		t.Fatal("WithTSO mutated its argument")
	}
	vdpa := guest.WithVDPA(h)
	if vdpa.Stack.VMExitNS != 0 {
		t.Fatal("vDPA keeps VM exits")
	}
	if vdpa.Stack.CopiesRx != h.Stack.CopiesRx-1 {
		t.Fatalf("vDPA copies: %d", vdpa.Stack.CopiesRx)
	}
}

// TestDeterminism backs the EXPERIMENTS.md claim: the virtual clock
// admits no jitter, so repeated runs produce identical figures.
func TestDeterminism(t *testing.T) {
	run := func() []Row {
		rows, err := Fig6(MicroGetDeviceCount, 500)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: %+v vs %+v", a[i], b[i])
		}
	}
	appRun := func() float64 {
		rows, err := Fig5a(ScaleCI)
		if err != nil {
			t.Fatal(err)
		}
		return rows[4].Value
	}
	if x, y := appRun(), appRun(); x != y {
		t.Fatalf("app run nondeterministic: %v vs %v", x, y)
	}
}
