package bench

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cricket/internal/cricket"
	"cricket/internal/cuda"
	"cricket/internal/gpu"
	"cricket/internal/guest"
	"cricket/internal/oncrpc"
)

// This file benchmarks the fault-tolerance layer: how long a session
// takes to recover from a server restart as a function of how much
// state it must replay. Recovery is dominated by real round trips and
// replay work, not simulated platform costs, so these figures are wall
// clock over in-process pipes — a lower bound isolating Cricket's own
// replay overhead from network latency.

// restartableServer hosts a Cricket server that can be killed and
// rebooted, for driving session recovery.
type restartableServer struct {
	mu     sync.Mutex
	rpcSrv *oncrpc.Server
	conns  []net.Conn
}

func newRestartableServer() *restartableServer {
	s := &restartableServer{}
	s.boot()
	return s
}

func (s *restartableServer) boot() {
	rt := cuda.NewRuntime(nil, gpu.New(gpu.SpecA100))
	rpcSrv := oncrpc.NewServer()
	cricket.NewServer(rt).Attach(rpcSrv)
	s.mu.Lock()
	s.rpcSrv = rpcSrv
	s.mu.Unlock()
}

func (s *restartableServer) redial() (io.ReadWriteCloser, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rpcSrv == nil {
		return nil, errors.New("bench: server down")
	}
	cli, srv := net.Pipe()
	s.conns = append(s.conns, srv)
	go s.rpcSrv.ServeConn(srv)
	return cli, nil
}

// restart kills every connection and boots a fresh instance with a new
// epoch, forcing the next session call to reconnect and replay.
func (s *restartableServer) restart() {
	s.mu.Lock()
	for _, c := range s.conns {
		c.Close()
	}
	s.conns = nil
	s.rpcSrv = nil
	s.mu.Unlock()
	s.boot()
}

func (s *restartableServer) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.conns {
		c.Close()
	}
	s.conns = nil
	s.rpcSrv = nil
}

// Recovery measures session recovery latency after a server restart,
// scaling the number of live allocations the session must replay. Each
// row reports the mean wall-clock recovery time over `runs` restarts.
func Recovery(allocCounts []int, runs int) ([]Row, error) {
	if len(allocCounts) == 0 {
		allocCounts = []int{1, 16, 64, 256}
	}
	if runs <= 0 {
		runs = 5
	}
	var rows []Row
	for _, n := range allocCounts {
		srv := newRestartableServer()
		s, err := cricket.NewSession(cricket.SessionOptions{
			Options:     cricket.Options{Platform: guest.NativeRust()},
			Redial:      srv.redial,
			BackoffBase: time.Millisecond,
			Seed:        1,
		})
		if err != nil {
			srv.close()
			return nil, err
		}
		for i := 0; i < n; i++ {
			if _, err := s.Malloc(64 << 10); err != nil {
				s.Close()
				srv.close()
				return nil, err
			}
		}
		var total time.Duration
		for r := 0; r < runs; r++ {
			srv.restart()
			start := time.Now()
			if err := s.Ping(); err != nil {
				s.Close()
				srv.close()
				return nil, fmt.Errorf("recovery with %d allocs: %w", n, err)
			}
			total += time.Since(start)
		}
		st := s.SessionStats()
		s.Close()
		srv.close()
		rows = append(rows, Row{
			Platform: fmt.Sprintf("%d allocations", n),
			Value:    float64(total.Microseconds()) / float64(runs) / 1e3, // ms
			Detail: fmt.Sprintf("%d reconnects, %d replays over %d restarts",
				st.Reconnects, st.Replays, runs),
		})
	}
	return rows, nil
}
