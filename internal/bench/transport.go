package bench

import (
	"fmt"
	"testing"

	"cricket/internal/apps"
	"cricket/internal/core"
	"cricket/internal/cricket"
	"cricket/internal/guest"
)

// This file is the transport ablation: the same bulk transfers and the
// same three applications run over each of the four pluggable
// transports, so the output proves both halves of the transport
// contract — the zero-copy paths are faster on large transfers than
// the socket paths, and every path is bit-preserving (identical app
// digests). The shm measurement additionally pins the client bulk
// path at zero heap allocations per operation.

// A TransportMethod is one transport's row in the ablation.
type TransportMethod struct {
	Method string

	// Simulated large-transfer throughput, host-to-device and
	// device-to-host.
	WriteMiBps float64
	ReadMiBps  float64

	// Output digests of the three paper applications run at reduced,
	// deterministic configurations. All four transports must agree
	// bit for bit.
	MatrixMul    uint64
	Histogram    uint64
	LinearSolver uint64

	// AllocsPerOp is the measured heap allocations per bulk write+read
	// pair on the shared-memory path; -1 for methods where it is not
	// pinned.
	AllocsPerOp float64
}

// TransportResult is the full ablation.
type TransportResult struct {
	Bytes   int // large-transfer size
	Methods []TransportMethod
}

// Violations lists every breached transport invariant; empty means
// the ablation upheld all of them.
func (r TransportResult) Violations() []string {
	var v []string
	byName := map[string]TransportMethod{}
	for _, m := range r.Methods {
		byName[m.Method] = m
	}
	inline, ok := byName[cricket.TransferRPCArgs.String()]
	if !ok {
		return []string{"no inline baseline in results"}
	}
	for _, m := range r.Methods {
		if m.MatrixMul != inline.MatrixMul || m.Histogram != inline.Histogram || m.LinearSolver != inline.LinearSolver {
			v = append(v, fmt.Sprintf("%s app digests differ from inline (transport is not bit-preserving)", m.Method))
		}
	}
	sockets := byName[cricket.TransferParallelSockets.String()]
	for _, name := range []string{cricket.TransferSharedMem.String(), cricket.TransferRDMA.String()} {
		if zc := byName[name]; zc.WriteMiBps <= sockets.WriteMiBps {
			v = append(v, fmt.Sprintf("%s write %.0f MiB/s does not beat parallel sockets %.0f MiB/s",
				name, zc.WriteMiBps, sockets.WriteMiBps))
		}
	}
	if shm := byName[cricket.TransferSharedMem.String()]; shm.AllocsPerOp != 0 {
		v = append(v, fmt.Sprintf("shared-memory bulk path allocates %.1f times per op, want 0", shm.AllocsPerOp))
	}
	return v
}

// transportMethods is the ablation order; inline first so it is the
// digest baseline.
var transportMethods = []cricket.TransferMethod{
	cricket.TransferRPCArgs,
	cricket.TransferParallelSockets,
	cricket.TransferSharedMem,
	cricket.TransferRDMA,
}

// Transport runs the ablation: per method, one large timed write and
// read (simulated clock), the three applications at small
// deterministic configurations, and — on the shared-memory path — an
// allocation count of the bulk write/read pair.
func Transport(bytes int) (TransportResult, error) {
	if bytes <= 0 {
		bytes = 64 << 20
	}
	res := TransportResult{Bytes: bytes}
	for _, m := range transportMethods {
		opts := cricket.Options{Transfer: m, Sockets: 8}
		row := TransportMethod{Method: m.String(), AllocsPerOp: -1}

		err := withVG(guest.NativeC(), opts, func(vg *core.VirtualGPU) error {
			buf, err := vg.Alloc(uint64(bytes))
			if err != nil {
				return err
			}
			data := make([]byte, bytes)
			for i := range data {
				data[i] = byte(i * 11)
			}
			start := vg.Now()
			if err := buf.Write(data); err != nil {
				return err
			}
			wElapsed := vg.Now() - start
			start = vg.Now()
			out, err := buf.Read()
			if err != nil {
				return err
			}
			rElapsed := vg.Now() - start
			for i := range out {
				if out[i] != data[i] {
					return fmt.Errorf("%s: large transfer corrupted at byte %d", m, i)
				}
			}
			row.WriteMiBps = float64(bytes) / (1 << 20) / wElapsed.Seconds()
			row.ReadMiBps = float64(bytes) / (1 << 20) / rElapsed.Seconds()

			if m == cricket.TransferSharedMem {
				// Pin the zero-copy claim: one bulk write plus one
				// read-into on the raw client, steady state. The warmup
				// transfers above already faulted in every lazy
				// structure (ring, scratch, counters).
				raw := vg.Raw()
				p := buf.Ptr()
				chunk := data[:64<<10]
				dst := make([]byte, len(chunk))
				row.AllocsPerOp = testing.AllocsPerRun(16, func() {
					if err := raw.MemcpyHtoD(p, chunk); err != nil {
						panic(err)
					}
					if err := raw.MemcpyDtoHInto(p, dst); err != nil {
						panic(err)
					}
				})
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("%s throughput: %w", m, err)
		}

		// The three applications, one pristine stack each so the call
		// sequences are deterministic per method.
		digests := []struct {
			out *uint64
			run func(vg *core.VirtualGPU) (apps.Result, error)
		}{
			{&row.MatrixMul, func(vg *core.VirtualGPU) (apps.Result, error) {
				return apps.MatrixMul{HA: 32, WA: 32, WB: 32, Iterations: 3}.Run(vg)
			}},
			{&row.Histogram, func(vg *core.VirtualGPU) (apps.Result, error) {
				return apps.Histogram{DataBytes: 1 << 20, ChunkBytes: 128 << 10, Passes: 2, Seed: 1}.Run(vg)
			}},
			{&row.LinearSolver, func(vg *core.VirtualGPU) (apps.Result, error) {
				return apps.LinearSolver{N: 64, Iterations: 2, Seed: 2}.Run(vg)
			}},
		}
		for _, d := range digests {
			err := withVG(guest.NativeC(), opts, func(vg *core.VirtualGPU) error {
				r, err := d.run(vg)
				if err != nil {
					return err
				}
				if !r.Verified {
					return fmt.Errorf("%s on %s: output failed verification", r.App, m)
				}
				*d.out = r.OutputDigest
				return nil
			})
			if err != nil {
				return res, fmt.Errorf("%s apps: %w", m, err)
			}
		}
		res.Methods = append(res.Methods, row)
	}
	return res, nil
}
