package bench

import "testing"

// A scaled-down trace must complete cleanly with every configuration
// serving traffic and the adaptive controllers demonstrably running.
// The comparative latency/throughput claims are checked by the
// benchharness smoke (timing-sensitive), not here.
func TestAdaptiveSmallTrace(t *testing.T) {
	res, err := Adaptive(AdaptiveConfig{Arrivals: 300, Seed: 42})
	if err != nil {
		t.Fatalf("Adaptive: %v", err)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(res.Runs))
	}
	for _, run := range res.Runs {
		if run.Served == 0 {
			t.Errorf("%s: served nothing (dropped %d, failed %d)", run.Name, run.Dropped, run.Failed)
		}
	}
	adaptive := res.run("adaptive")
	if adaptive == nil {
		t.Fatal("no adaptive run")
	}
	if adaptive.TunerIntervals == 0 {
		t.Error("auto-tuner never ran a control interval")
	}
	if adaptive.WindowSamples == 0 {
		t.Error("adaptive window never observed a call")
	}
}
