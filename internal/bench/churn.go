package bench

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"cricket/internal/cricket"
	"cricket/internal/cubin"
	"cricket/internal/cuda"
	"cricket/internal/gpu"
	"cricket/internal/guest"
	"cricket/internal/netsim"
	"cricket/internal/oncrpc"
)

// This file is the chaos/soak harness for the server's resource
// governance: many concurrent sessions hammer one governed server
// while a deterministic churn plan (internal/netsim) kills, resets,
// and stalls their connections, and a quarter of the guests are
// abandoned outright — the moral equivalent of destroying a unikernel
// VM without letting it clean up. At the end the harness checks the
// governance invariants: every device byte reclaimed, no scheduler
// ghosts, no leases left, and every surviving guest's output
// bit-identical to a fault-free run.

// ChurnResult summarizes one churn storm and the end-state invariant
// checks.
type ChurnResult struct {
	Sessions  int // concurrent sessions launched
	Calls     int // kernel launches each session attempts
	Survivors int // sessions that finished their workload
	Abandoned int // sessions killed mid-run without cleanup
	Failed    int // sessions that exhausted their attempt budget

	Digest     uint64 // fault-free baseline output digest
	Mismatches int    // survivors whose digest differs from the baseline

	Reconnects uint64 // summed across sessions
	Replays    uint64
	Overloads  uint64

	Server cricket.ServerStats

	// End-state invariants (all must be zero).
	LeakedAllocs int // live device allocations after reclamation
	LeasesLeft   int // leases still registered
	SchedClients int // scheduler slots still attached
}

// Violations lists every breached invariant; empty means the storm
// upheld all of them.
func (r ChurnResult) Violations() []string {
	var v []string
	if r.Survivors == 0 {
		v = append(v, "no session survived the storm")
	}
	if r.Failed > 0 {
		v = append(v, fmt.Sprintf("%d session(s) exhausted their attempt budget", r.Failed))
	}
	if r.Mismatches > 0 {
		v = append(v, fmt.Sprintf("%d surviving digest(s) differ from the fault-free run", r.Mismatches))
	}
	if r.LeakedAllocs > 0 {
		v = append(v, fmt.Sprintf("%d device allocation(s) leaked", r.LeakedAllocs))
	}
	if r.LeasesLeft > 0 {
		v = append(v, fmt.Sprintf("%d lease(s) never reclaimed", r.LeasesLeft))
	}
	if r.SchedClients > 0 {
		v = append(v, fmt.Sprintf("%d scheduler client(s) never detached", r.SchedClients))
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// churnFatbin builds the sample-kernel fat binary the guests load.
func churnFatbin() []byte {
	var fb cubin.FatBinary
	fb.AddImage(cuda.BuiltinImage(80), true)
	return fb.Encode()
}

// churnWorkload is one guest's deterministic application: a 32x32
// matrixMul launched `calls` times with periodic memory churn (memset
// plus a transient allocation) and periodic result sampling folded
// into a digest. Identical inputs yield an identical digest, so any
// divergence under faults is a correctness loss, not noise. A
// non-negative abandonAt stops mid-run without any cleanup.
func churnWorkload(s *cricket.Session, calls, abandonAt int) (uint64, error) {
	return churnWorkloadImpl(s, calls, abandonAt, nil)
}

// churnWorkloadHooked runs the same workload with a client-side hook
// invoked at the top of every launch iteration. The hook performs no
// session calls, so the operation sequence — and therefore the digest
// — is identical to churnWorkload's fault-free run.
func churnWorkloadHooked(s *cricket.Session, calls int, hook func(i int)) (uint64, error) {
	return churnWorkloadImpl(s, calls, -1, hook)
}

func churnWorkloadImpl(s *cricket.Session, calls, abandonAt int, hook func(i int)) (uint64, error) {
	const dim = 32
	size := uint64(dim * dim * 4)
	m, err := s.ModuleLoad(churnFatbin())
	if err != nil {
		return 0, err
	}
	f, err := s.ModuleGetFunction(m, cuda.KernelMatrixMul)
	if err != nil {
		return 0, err
	}
	dA, err := s.Malloc(size)
	if err != nil {
		return 0, err
	}
	dB, err := s.Malloc(size)
	if err != nil {
		return 0, err
	}
	dC, err := s.Malloc(size)
	if err != nil {
		return 0, err
	}
	host := make([]byte, size)
	for i := 0; i < dim*dim; i++ {
		binary.LittleEndian.PutUint32(host[i*4:], math.Float32bits(float32(i%7)+0.5))
	}
	h := fnv.New64a()
	args := cuda.NewArgBuffer().Ptr(dC).Ptr(dA).Ptr(dB).I32(dim).I32(dim).Bytes()
	grid := gpu.Dim3{X: 1, Y: 1, Z: 1}
	block := gpu.Dim3{X: 32, Y: 32, Z: 1}
	for i := 0; i < calls; i++ {
		if i == abandonAt {
			return 0, nil
		}
		if hook != nil {
			hook(i)
		}
		// Inputs are re-uploaded every iteration so the computation is
		// self-contained: a replay onto a fresh lease (whose buffers
		// come back zeroed) is corrected by the next upload.
		if err := s.MemcpyHtoD(dA, host); err != nil {
			return 0, err
		}
		if err := s.MemcpyHtoD(dB, host); err != nil {
			return 0, err
		}
		if err := s.LaunchKernel(f, grid, block, 0, 0, args); err != nil {
			return 0, err
		}
		if i%16 == 5 {
			// Transient allocation plus a memset: handle churn for the
			// lease tables and the reclamation sweep to chew on.
			tmp, err := s.Malloc(size)
			if err != nil {
				return 0, err
			}
			if err := s.Memset(tmp, byte(i), size); err != nil {
				return 0, err
			}
			if err := s.Free(tmp); err != nil {
				return 0, err
			}
		}
		if i%32 == 31 || i == calls-1 {
			if err := s.DeviceSynchronize(); err != nil {
				return 0, err
			}
			out, err := s.MemcpyDtoH(dC, size)
			if err != nil {
				return 0, err
			}
			h.Write(out)
		}
	}
	return h.Sum64(), nil
}

// Churn runs `sessions` concurrent guests for `calls` kernel launches
// each against one governed server while the seeded churn plan
// disrupts their connections, then checks the reclamation invariants.
// Every fourth session is abandoned mid-run to exercise orphan GC.
func Churn(sessions, calls int, seed int64) (ChurnResult, error) {
	if sessions <= 0 {
		sessions = 16
	}
	if calls <= 0 {
		calls = 200
	}
	res := ChurnResult{Sessions: sessions, Calls: calls}

	// Fault-free baseline digest on a pristine, ungoverned server.
	base := newRestartableServer()
	bs, err := cricket.NewSession(cricket.SessionOptions{
		Options: cricket.Options{Platform: guest.NativeRust()},
		Redial:  base.redial,
		Seed:    1,
	})
	if err != nil {
		base.close()
		return res, err
	}
	res.Digest, err = churnWorkload(bs, calls, -1)
	bs.Close()
	base.close()
	if err != nil {
		return res, fmt.Errorf("baseline workload: %w", err)
	}

	// The governed server. The TTL comfortably exceeds the worst-case
	// reconnect backoff, so a live guest never loses its lease to a
	// transient drop; only abandoned guests expire. MaxInflight is set
	// below the session count so admission control genuinely sheds
	// under the storm.
	const ttl = time.Second
	rt := cuda.NewRuntime(nil, gpu.New(gpu.SpecA100))
	srv := cricket.NewServer(rt)
	srv.SetLimits(cricket.Limits{
		LeaseTTL:    ttl,
		MaxClients:  sessions + 2,
		MaxInflight: maxInt(2, sessions-2),
		RetryAfter:  200 * time.Microsecond,
	})
	stopSweep := srv.StartLeaseSweeper(25 * time.Millisecond)
	rpcSrv := oncrpc.NewServer()
	srv.Attach(rpcSrv)
	plan := netsim.NewChurn(seed)

	type outcome struct {
		digest    uint64
		abandoned bool
		err       error
		stats     cricket.SessionStats
	}
	outcomes := make([]outcome, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			attempt := 0
			redial := func() (io.ReadWriteCloser, error) {
				cli, sc := net.Pipe()
				go rpcSrv.ServeConn(sc)
				conn := plan.Wrap(i, attempt, cli)
				attempt++
				return conn, nil
			}
			// A fault can kill the very first handshake; dialing is part
			// of the storm, so the initial connect retries like any
			// recovery would.
			var s *cricket.Session
			var err error
			for try := 0; try < 25; try++ {
				s, err = cricket.NewSession(cricket.SessionOptions{
					Options:     cricket.Options{Platform: guest.NativeRust()},
					Redial:      redial,
					Nonce:       uint64(i) + 1,
					Seed:        seed + int64(i) + 1,
					MaxAttempts: 25,
					BackoffBase: 500 * time.Microsecond,
					BackoffMax:  10 * time.Millisecond,
				})
				if err == nil {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			abandonAt := -1
			if i%4 == 3 {
				abandonAt = calls / 3 // killed guest: no Free, no Detach, no Close
			}
			digest, err := churnWorkload(s, calls, abandonAt)
			st := s.SessionStats()
			if abandonAt >= 0 && err == nil {
				outcomes[i] = outcome{abandoned: true, stats: st}
				return // deliberately no Close: the lease must expire
			}
			s.Close()
			outcomes[i] = outcome{digest: digest, err: err, stats: st}
		}(i)
	}
	wg.Wait()

	for _, o := range outcomes {
		res.Reconnects += o.stats.Reconnects
		res.Replays += o.stats.Replays
		res.Overloads += o.stats.Overloads
		switch {
		case o.abandoned:
			res.Abandoned++
		case o.err != nil:
			res.Failed++
		default:
			res.Survivors++
			if o.digest != res.Digest {
				res.Mismatches++
			}
		}
	}

	// Teardown: hard-close the abandoned guests' connections (their
	// VMs are gone), then wait for the sweeper to reclaim the expired
	// leases.
	rpcSrv.Close()
	deadline := time.Now().Add(3 * ttl)
	for srv.LeaseCount() > 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	stopSweep()

	res.Server = srv.Stats()
	res.LeasesLeft = srv.LeaseCount()
	res.SchedClients = len(srv.Scheduler().Clients())
	if dev, err := rt.Device(0); err == nil {
		res.LeakedAllocs = dev.LiveAllocations()
	}
	return res, nil
}
