// Package bench regenerates every table and figure of the paper's
// evaluation: Table 1 (configurations), Figure 5 (proxy-application
// execution times), Figure 6 (API-call microbenchmarks), Figure 7
// (memory-transfer bandwidth), and the §4.2 offload ablation — plus
// ablations for the design choices called out in DESIGN.md (transfer
// methods, record fragment size, cubin compression, MTU).
//
// All results are simulated durations on the virtual clock; see
// EXPERIMENTS.md for the paper-vs-measured comparison.
package bench

import (
	"fmt"
	"strings"
	"time"

	"cricket/internal/apps"
	"cricket/internal/core"
	"cricket/internal/cricket"
	"cricket/internal/cubin"
	"cricket/internal/cuda"
	"cricket/internal/gpu"
	"cricket/internal/guest"
	"cricket/internal/netsim"
)

// Scale selects the workload size of an experiment.
type Scale int

// Scales.
const (
	// ScalePaper runs the exact configuration of the paper (100,000
	// matrixMul iterations, 512 MiB transfers, ...). Kernel bodies
	// replay in timing-only mode after verification.
	ScalePaper Scale = iota
	// ScaleCI runs a reduced configuration with full functional
	// execution, for tests and quick runs.
	ScaleCI
)

// A Row is one platform's result in a figure.
type Row struct {
	Platform string
	// Value is the metric: simulated seconds for Figs 5/6, MiB/s for
	// Fig 7.
	Value float64
	// Detail carries auxiliary values (e.g. init time).
	Detail string
}

// withVG runs f against a fresh single-A100 cluster and client on p.
func withVG(p guest.Platform, opts cricket.Options, f func(*core.VirtualGPU) error) error {
	cl := core.NewCluster()
	defer cl.Close()
	vg, err := cl.ConnectOpts(p, opts)
	if err != nil {
		return err
	}
	defer vg.Close()
	return f(vg)
}

// Fig5a reproduces matrixMul (Fig 5a): execution time per platform.
func Fig5a(scale Scale) ([]Row, error) {
	cfg := apps.MatrixMul{TimingReplay: true}
	if scale == ScaleCI {
		cfg = apps.MatrixMul{HA: 64, WA: 32, WB: 64, Iterations: 200}
	}
	return runApp(func(vg *core.VirtualGPU) (apps.Result, error) { return cfg.Run(vg) })
}

// Fig5b reproduces cuSolverDn_LinearSolver (Fig 5b).
func Fig5b(scale Scale) ([]Row, error) {
	cfg := apps.LinearSolver{TimingReplay: true}
	if scale == ScaleCI {
		cfg = apps.LinearSolver{N: 64, Iterations: 20}
	}
	return runApp(func(vg *core.VirtualGPU) (apps.Result, error) { return cfg.Run(vg) })
}

// Fig5c reproduces histogram (Fig 5c).
func Fig5c(scale Scale) ([]Row, error) {
	cfg := apps.Histogram{TimingReplay: true}
	if scale == ScaleCI {
		cfg = apps.Histogram{DataBytes: 4 << 20, ChunkBytes: 256 << 10, Passes: 20}
	}
	return runApp(func(vg *core.VirtualGPU) (apps.Result, error) { return cfg.Run(vg) })
}

func runApp(run func(*core.VirtualGPU) (apps.Result, error)) ([]Row, error) {
	var rows []Row
	for _, p := range guest.All() {
		var res apps.Result
		err := withVG(p, cricket.Options{}, func(vg *core.VirtualGPU) error {
			var err error
			res, err = run(vg)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		if !res.Verified {
			return nil, fmt.Errorf("%s: result verification failed", p.Name)
		}
		rows = append(rows, Row{
			Platform: p.Name,
			Value:    res.Total().Seconds(),
			Detail: fmt.Sprintf("init %.3fs, exec %.3fs, %d calls, %.2f MiB moved",
				res.InitTime.Seconds(), res.ExecTime.Seconds(), res.Stats.APICalls,
				float64(res.Stats.BytesToDevice+res.Stats.BytesFromDevice)/(1<<20)),
		})
	}
	return rows, nil
}

// MicroAPI selects a Figure 6 microbenchmark.
type MicroAPI int

// Microbenchmark APIs.
const (
	// MicroGetDeviceCount is Fig 6a.
	MicroGetDeviceCount MicroAPI = iota
	// MicroMallocFree is Fig 6b (alternating cudaMalloc/cudaFree).
	MicroMallocFree
	// MicroKernelLaunch is Fig 6c.
	MicroKernelLaunch
)

func (m MicroAPI) String() string {
	switch m {
	case MicroGetDeviceCount:
		return "cudaGetDeviceCount"
	case MicroMallocFree:
		return "cudaMalloc/cudaFree"
	case MicroKernelLaunch:
		return "kernel launch"
	}
	return "unknown"
}

// Fig6 reproduces the Fig 6 microbenchmarks: total simulated time of
// `calls` invocations of the API on every platform (the paper uses
// 100,000).
func Fig6(api MicroAPI, calls int) ([]Row, error) {
	if calls <= 0 {
		calls = 100_000
	}
	var rows []Row
	for _, p := range guest.All() {
		var elapsed time.Duration
		err := withVG(p, cricket.Options{}, func(vg *core.VirtualGPU) error {
			c := vg.Raw()
			var setupF cuda.Function
			var args []byte
			grid := gpu.Dim3{X: 1, Y: 1, Z: 1}
			block := gpu.Dim3{X: 256, Y: 1, Z: 1}
			if api == MicroKernelLaunch {
				var fb cubin.FatBinary
				fb.AddImage(cuda.BuiltinImage(80), true)
				mod, err := vg.LoadModule(fb.Encode())
				if err != nil {
					return err
				}
				f, err := mod.Function(cuda.KernelVectorAdd)
				if err != nil {
					return err
				}
				setupF = f
				const n = 256
				a, err := vg.Alloc(n * 4)
				if err != nil {
					return err
				}
				b, err := vg.Alloc(n * 4)
				if err != nil {
					return err
				}
				out, err := vg.Alloc(n * 4)
				if err != nil {
					return err
				}
				args = cuda.NewArgBuffer().Ptr(a.Ptr()).Ptr(b.Ptr()).Ptr(out.Ptr()).I32(n).Bytes()
				// Verify once fully, then replay for timing.
				if err := vg.Launch(setupF, grid, block, 0, args); err != nil {
					return err
				}
				vg.Cluster().SetTimingOnly(true)
				defer vg.Cluster().SetTimingOnly(false)
			}
			start := vg.Now()
			switch api {
			case MicroGetDeviceCount:
				for i := 0; i < calls; i++ {
					if _, err := c.GetDeviceCount(); err != nil {
						return err
					}
				}
			case MicroMallocFree:
				for i := 0; i < calls/2; i++ {
					p, err := c.Malloc(1 << 20)
					if err != nil {
						return err
					}
					if err := c.Free(p); err != nil {
						return err
					}
				}
			case MicroKernelLaunch:
				for i := 0; i < calls; i++ {
					if err := c.LaunchKernel(setupF, grid, block, 0, 0, args); err != nil {
						return err
					}
				}
			}
			elapsed = vg.Now() - start
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		rows = append(rows, Row{
			Platform: p.Name,
			Value:    elapsed.Seconds(),
			Detail:   fmt.Sprintf("%.2f µs/call", elapsed.Seconds()/float64(calls)*1e6),
		})
	}
	return rows, nil
}

// Fig7 reproduces the Fig 7 bandwidth measurements: bandwidthTest
// with the given direction (paper: 512 MiB, 10 runs, RPC-argument
// transfers).
func Fig7(dir apps.Direction, bytes, runs int) ([]Row, error) {
	if bytes <= 0 {
		bytes = 512 << 20
	}
	if runs <= 0 {
		runs = 10
	}
	var rows []Row
	for _, p := range guest.All() {
		var res apps.BandwidthResult
		err := withVG(p, cricket.Options{}, func(vg *core.VirtualGPU) error {
			var err error
			res, err = apps.BandwidthTest{Bytes: bytes, Runs: runs, Direction: dir}.Run(vg)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		if !res.Verified {
			return nil, fmt.Errorf("%s: transfer verification failed", p.Name)
		}
		rows = append(rows, Row{
			Platform: p.Name,
			Value:    res.MiBps,
			Detail:   fmt.Sprintf("%.3fs per %d MiB", res.Elapsed.Seconds(), bytes>>20),
		})
	}
	return rows, nil
}

// AblationOffloads reproduces the §4.2 ethtool experiment: Linux VM
// bandwidth with and without the transmit offloads, both directions.
func AblationOffloads(bytes, runs int) ([]Row, error) {
	if bytes <= 0 {
		bytes = 512 << 20
	}
	if runs <= 0 {
		runs = 10
	}
	var rows []Row
	for _, cfg := range []struct {
		name string
		p    guest.Platform
	}{
		{"Linux VM (offloads on)", guest.LinuxVM()},
		{"Linux VM (tso/tx-csum/sg off)", guest.WithoutTxOffloads(guest.LinuxVM())},
	} {
		for _, dir := range []apps.Direction{apps.HostToDevice, apps.DeviceToHost} {
			var res apps.BandwidthResult
			err := withVG(cfg.p, cricket.Options{}, func(vg *core.VirtualGPU) error {
				var err error
				res, err = apps.BandwidthTest{Bytes: bytes, Runs: runs, Direction: dir}.Run(vg)
				return err
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{
				Platform: cfg.name + ", " + dir.String(),
				Value:    res.MiBps,
			})
		}
	}
	return rows, nil
}

// AblationTransferMethods compares Cricket's four memory-transfer
// methods from the native C client (the only one that supports them
// all).
func AblationTransferMethods(bytes int) ([]Row, error) {
	if bytes <= 0 {
		bytes = 64 << 20
	}
	var rows []Row
	for _, m := range []cricket.TransferMethod{
		cricket.TransferRPCArgs, cricket.TransferParallelSockets,
		cricket.TransferSharedMem, cricket.TransferRDMA,
	} {
		var elapsed time.Duration
		err := withVG(guest.NativeC(), cricket.Options{Transfer: m, Sockets: 8}, func(vg *core.VirtualGPU) error {
			buf, err := vg.Alloc(uint64(bytes))
			if err != nil {
				return err
			}
			data := make([]byte, bytes)
			start := vg.Now()
			if err := buf.Write(data); err != nil {
				return err
			}
			elapsed = vg.Now() - start
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Platform: m.String(),
			Value:    float64(bytes) / (1 << 20) / elapsed.Seconds(),
			Detail:   fmt.Sprintf("%.3fs per %d MiB", elapsed.Seconds(), bytes>>20),
		})
	}
	return rows, nil
}

// AblationCubinCompression compares module loading from raw and
// compressed fat binaries: bytes shipped and simulated load time.
func AblationCubinCompression() ([]Row, error) {
	var rows []Row
	for _, compressed := range []bool{false, true} {
		var fb cubin.FatBinary
		fb.AddImage(cuda.BuiltinImage(80), compressed)
		image := fb.Encode()
		var elapsed time.Duration
		err := withVG(guest.RustyHermit(), cricket.Options{}, func(vg *core.VirtualGPU) error {
			start := vg.Now()
			_, err := vg.LoadModule(image)
			elapsed = vg.Now() - start
			return err
		})
		if err != nil {
			return nil, err
		}
		name := "raw"
		if compressed {
			name = "compressed"
		}
		rows = append(rows, Row{
			Platform: name,
			Value:    elapsed.Seconds() * 1e6, // µs
			Detail:   fmt.Sprintf("%d image bytes", len(image)),
		})
	}
	return rows, nil
}

// AblationFutureWork projects the paper's §5 outlook: RustyHermit
// with TCP segmentation offload (in progress upstream) and with a
// vDPA data path, against today's Hermit and native Rust, for bulk
// host-to-device transfers.
func AblationFutureWork(bytes int) ([]Row, error) {
	if bytes <= 0 {
		bytes = 512 << 20
	}
	var rows []Row
	for _, p := range []guest.Platform{
		guest.NativeRust(),
		guest.RustyHermit(),
		guest.WithTSO(guest.RustyHermit()),
		guest.WithVDPA(guest.WithTSO(guest.RustyHermit())),
	} {
		path := guest.NewPath(netsim.NewClock(), p)
		d := path.StreamCost(bytes, true, 1)
		rows = append(rows, Row{
			Platform: p.Name,
			Value:    float64(bytes) / (1 << 20) / d.Seconds(),
			Detail:   fmt.Sprintf("%.3fs per %d MiB", d.Seconds(), bytes>>20),
		})
	}
	return rows, nil
}

// AblationMTU compares per-call latency and bulk bandwidth at IP MTU
// 1500 versus the paper's 9000 on the RustyHermit platform.
func AblationMTU() ([]Row, error) {
	var rows []Row
	for _, mtu := range []int{1500, 9000} {
		p := guest.RustyHermit()
		path := guest.NewPath(netsim.NewClock(), p)
		path.Link.MTU = mtu
		perCall := path.RoundTripCost(88, 28)
		const n = 64 << 20
		mibps := float64(n) / (1 << 20) / path.StreamCost(n, true, 1).Seconds()
		rows = append(rows, Row{
			Platform: fmt.Sprintf("Hermit, MTU %d", mtu),
			Value:    mibps,
			Detail:   fmt.Sprintf("%.2f µs/small call", perCall.Seconds()*1e6),
		})
	}
	return rows, nil
}

// Table1 returns the configuration matrix.
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-5s %-12s %-11s %-8s\n", "Name", "app.", "OS", "Hypervisor", "Network")
	for _, p := range guest.All() {
		fmt.Fprintf(&b, "%-10s %-5s %-12s %-11s %-8s\n", p.Name, p.AppLang, p.OS, p.Hypervisor, p.Network)
	}
	return b.String()
}

// Render formats rows as an aligned text table.
func Render(title, unit string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-32s %12.3f %s", r.Platform, r.Value, unit)
		if r.Detail != "" {
			fmt.Fprintf(&b, "   (%s)", r.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
