// Package cubin implements a simulated NVIDIA kernel binary format:
// cubin images holding compiled kernels with their metadata (names,
// parameter layout, global variables), a fat-binary container that can
// bundle images for several GPU architectures, and the LZSS-style
// compression applied to fat-binary entries.
//
// The paper extends Cricket to load kernels from cubin files via the
// cuModule API instead of relying on nvcc's hidden fat-binary
// registration, and contributes a decompression routine so metadata
// can be extracted from compressed kernels. This package reproduces
// that pipeline: clients parse (and decompress) cubins locally to
// learn kernel parameter layouts, then ship the image to the Cricket
// server with cuModuleLoad.
package cubin

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Compression parameters. The scheme is a classic byte-oriented LZSS:
// a control byte precedes up to eight items; a set bit means a
// (offset, length) back-reference into the sliding window, a clear bit
// a literal byte. This mirrors the shape of NVIDIA's fatbin
// compression (an unpublished LZ variant) closely enough to exercise
// the same decompression-before-metadata-extraction code path.
const (
	windowSize = 1 << 12 // 4 KiB sliding window
	minMatch   = 3
	maxMatch   = minMatch + 255 // length stored in one byte
)

// ErrCorrupt reports undecodable compressed data.
var ErrCorrupt = errors.New("cubin: corrupt compressed data")

// Compress applies LZSS compression to src. The output begins with the
// uncompressed length as a 4-byte big-endian prefix.
func Compress(src []byte) []byte {
	if len(src) > 0xffffffff {
		panic("cubin: input too large")
	}
	out := make([]byte, 4, len(src)/2+16)
	binary.BigEndian.PutUint32(out, uint32(len(src)))

	// Hash chains over 3-byte sequences for match finding.
	const hashBits = 14
	const hashSize = 1 << hashBits
	var head [hashSize]int32
	for i := range head {
		head[i] = -1
	}
	prev := make([]int32, len(src))
	hash := func(i int) uint32 {
		v := uint32(src[i]) | uint32(src[i+1])<<8 | uint32(src[i+2])<<16
		return (v * 2654435761) >> (32 - hashBits)
	}

	pos := 0
	for pos < len(src) {
		ctrlIdx := len(out)
		out = append(out, 0)
		var ctrl byte
		for bit := 0; bit < 8 && pos < len(src); bit++ {
			matchLen, matchOff := 0, 0
			if pos+minMatch <= len(src) {
				h := hash(pos)
				cand := head[h]
				tries := 16
				for cand >= 0 && pos-int(cand) <= windowSize && tries > 0 {
					c := int(cand)
					l := 0
					max := len(src) - pos
					if max > maxMatch {
						max = maxMatch
					}
					for l < max && src[c+l] == src[pos+l] {
						l++
					}
					if l > matchLen {
						matchLen, matchOff = l, pos-c
						if l == max {
							break
						}
					}
					cand = prev[cand]
					tries--
				}
			}
			if matchLen >= minMatch {
				ctrl |= 1 << bit
				// offset: 12 bits, length-minMatch: 8 bits, packed
				// into 3 bytes with 4 spare offset bits kept zero.
				out = append(out,
					byte(matchOff>>8), byte(matchOff),
					byte(matchLen-minMatch))
				end := pos + matchLen
				for ; pos < end; pos++ {
					if pos+minMatch <= len(src) {
						h := hash(pos)
						prev[pos] = head[h]
						head[h] = int32(pos)
					}
				}
			} else {
				out = append(out, src[pos])
				if pos+minMatch <= len(src) {
					h := hash(pos)
					prev[pos] = head[h]
					head[h] = int32(pos)
				}
				pos++
			}
		}
		out[ctrlIdx] = ctrl
	}
	return out
}

// Decompress reverses Compress. It validates the length prefix and all
// back-references.
func Decompress(src []byte) ([]byte, error) {
	if len(src) < 4 {
		return nil, fmt.Errorf("%w: missing length prefix", ErrCorrupt)
	}
	n := binary.BigEndian.Uint32(src)
	src = src[4:]
	// A hostile length prefix must not drive a huge allocation: LZSS
	// expands each 3-byte match to at most maxMatch bytes, so the
	// output can never exceed that ratio of the input.
	if int64(n) > int64(len(src))*maxMatch {
		return nil, fmt.Errorf("%w: declared length %d exceeds maximum expansion of %d input bytes", ErrCorrupt, n, len(src))
	}
	out := make([]byte, 0, n)
	pos := 0
	for len(out) < int(n) {
		if pos >= len(src) {
			return nil, fmt.Errorf("%w: truncated stream", ErrCorrupt)
		}
		ctrl := src[pos]
		pos++
		for bit := 0; bit < 8 && len(out) < int(n); bit++ {
			if ctrl&(1<<bit) != 0 {
				if pos+3 > len(src) {
					return nil, fmt.Errorf("%w: truncated match", ErrCorrupt)
				}
				off := int(src[pos])<<8 | int(src[pos+1])
				length := int(src[pos+2]) + minMatch
				pos += 3
				if off == 0 || off > len(out) {
					return nil, fmt.Errorf("%w: bad back-reference offset %d at output %d", ErrCorrupt, off, len(out))
				}
				if len(out)+length > int(n) {
					return nil, fmt.Errorf("%w: match overruns declared length", ErrCorrupt)
				}
				start := len(out) - off
				for i := 0; i < length; i++ {
					out = append(out, out[start+i])
				}
			} else {
				if pos >= len(src) {
					return nil, fmt.Errorf("%w: truncated literal", ErrCorrupt)
				}
				out = append(out, src[pos])
				pos++
			}
		}
	}
	return out, nil
}

// DecompressedLen reports the decompressed size recorded in a
// compressed stream without decompressing it.
func DecompressedLen(src []byte) (int, error) {
	if len(src) < 4 {
		return 0, fmt.Errorf("%w: missing length prefix", ErrCorrupt)
	}
	return int(binary.BigEndian.Uint32(src)), nil
}
