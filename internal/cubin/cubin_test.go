package cubin

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCompressRoundTripBasics(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("abc"),
		[]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"),
		[]byte("abcabcabcabcabcabcabcabc"),
		[]byte(strings.Repeat("the quick brown fox ", 100)),
		bytes.Repeat([]byte{0}, 10000),
	}
	for i, src := range cases {
		comp := Compress(src)
		got, err := Decompress(comp)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("case %d: round trip mismatch (%d vs %d bytes)", i, len(got), len(src))
		}
	}
}

func TestCompressActuallyCompresses(t *testing.T) {
	src := bytes.Repeat([]byte("cricket kernel metadata "), 500)
	comp := Compress(src)
	if len(comp) >= len(src)/4 {
		t.Fatalf("repetitive input compressed %d -> %d; expected at least 4x", len(src), len(comp))
	}
}

func TestDecompressedLen(t *testing.T) {
	src := []byte("some payload here")
	comp := Compress(src)
	n, err := DecompressedLen(comp)
	if err != nil || n != len(src) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if _, err := DecompressedLen([]byte{1, 2}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short input: %v", err)
	}
}

func TestDecompressCorruptInputs(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefg"), 50)
	comp := Compress(src)
	// Truncations must error, never panic.
	for cut := 0; cut < len(comp); cut += 3 {
		if _, err := Decompress(comp[:cut]); err == nil {
			// A truncation that still decodes completely is only
			// possible if it preserved the full stream; cut < len
			// means it did not.
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	// A back-reference pointing before the start must be rejected.
	bad := []byte{0, 0, 0, 10, 0x01, 0x7f, 0xff, 0x00}
	if _, err := Decompress(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad backref: %v", err)
	}
}

func TestQuickCompressRoundTrip(t *testing.T) {
	f := func(src []byte) bool {
		got, err := Decompress(Compress(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompressRepetitive(t *testing.T) {
	// Random data is incompressible; also exercise structured input
	// where matches dominate.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		unit := make([]byte, 1+rng.Intn(64))
		rng.Read(unit)
		src := bytes.Repeat(unit, 1+rng.Intn(100))
		got, err := Decompress(Compress(src))
		if err != nil || !bytes.Equal(got, src) {
			t.Fatalf("trial %d: err=%v", trial, err)
		}
	}
}

func testImage() *Image {
	return &Image{
		Arch: 80,
		Kernels: []KernelDesc{
			{
				Name: "_Z13matrixMulCUDAILi32EEvPfS0_S0_ii",
				Params: []ParamInfo{
					{Offset: 0, Size: 8, Kind: ParamPointer},
					{Offset: 8, Size: 8, Kind: ParamPointer},
					{Offset: 16, Size: 8, Kind: ParamPointer},
					{Offset: 24, Size: 4, Kind: ParamScalar},
					{Offset: 28, Size: 4, Kind: ParamScalar},
				},
				SharedMem:     8192,
				RegsPerThread: 32,
				Code:          bytes.Repeat([]byte("SASS"), 256),
			},
			{
				Name:          "histogram256Kernel",
				Params:        []ParamInfo{{0, 8, ParamPointer}, {8, 8, ParamPointer}, {16, 4, ParamScalar}},
				SharedMem:     1024,
				RegsPerThread: 16,
				Code:          []byte("tiny"),
			},
		},
		Globals: []GlobalVar{
			{Name: "d_Histogram", Size: 1024},
			{Name: "constTable", Size: 256},
		},
	}
}

func TestImageEncodeParseRoundTrip(t *testing.T) {
	img := testImage()
	data := img.Encode()
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Arch != img.Arch || len(got.Kernels) != 2 || len(got.Globals) != 2 {
		t.Fatalf("got %+v", got)
	}
	k0 := got.Kernels[0]
	if k0.Name != img.Kernels[0].Name || len(k0.Params) != 5 || k0.SharedMem != 8192 {
		t.Fatalf("kernel 0 = %+v", k0)
	}
	if k0.Params[3].Kind != ParamScalar || k0.Params[0].Kind != ParamPointer {
		t.Fatalf("params = %+v", k0.Params)
	}
	if !bytes.Equal(k0.Code, img.Kernels[0].Code) {
		t.Fatal("code mismatch")
	}
	if got.Globals[0].Name != "d_Histogram" || got.Globals[0].Size != 1024 {
		t.Fatalf("globals = %+v", got.Globals)
	}
}

func TestImageLookup(t *testing.T) {
	img := testImage()
	k, ok := img.Kernel("histogram256Kernel")
	if !ok || k.SharedMem != 1024 {
		t.Fatalf("k=%+v ok=%v", k, ok)
	}
	if _, ok := img.Kernel("missing"); ok {
		t.Fatal("found missing kernel")
	}
	g, ok := img.Global("constTable")
	if !ok || g.Size != 256 {
		t.Fatalf("g=%+v ok=%v", g, ok)
	}
	if _, ok := img.Global("missing"); ok {
		t.Fatal("found missing global")
	}
}

func TestKernelArgBytes(t *testing.T) {
	img := testImage()
	if got := img.Kernels[0].ArgBytes(); got != 32 {
		t.Fatalf("ArgBytes = %d, want 32", got)
	}
	empty := KernelDesc{}
	if empty.ArgBytes() != 0 {
		t.Fatal("empty kernel ArgBytes != 0")
	}
}

func TestParseRejectsCorruptImages(t *testing.T) {
	img := testImage()
	data := img.Encode()
	if _, err := Parse(data[:8]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("truncated: %v", err)
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := Parse(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	bad = append([]byte(nil), data...)
	bad[7] = 99 // version
	if _, err := Parse(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}
	// Trailing garbage.
	if _, err := Parse(append(append([]byte(nil), data...), 0xff)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("trailing: %v", err)
	}
	// Every truncation point must error, not panic.
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := Parse(data[:cut]); err == nil {
			t.Fatalf("truncation at %d parsed", cut)
		}
	}
}

func TestFatBinaryRoundTrip(t *testing.T) {
	img80 := testImage()
	img75 := testImage()
	img75.Arch = 75
	var fb FatBinary
	fb.AddImage(img80, true)
	fb.AddImage(img75, false)
	data := fb.Encode()

	got, err := ParseFat(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 2 {
		t.Fatalf("entries = %d", len(got.Entries))
	}
	if !got.Entries[0].Compressed || got.Entries[1].Compressed {
		t.Fatalf("compression flags: %+v", got.Entries)
	}
	// The compressed entry must be smaller than raw (repetitive SASS).
	if len(got.Entries[0].Payload) >= int(got.Entries[0].RawSize) {
		t.Fatalf("compressed %d >= raw %d", len(got.Entries[0].Payload), got.Entries[0].RawSize)
	}
	for i, arch := range []uint32{80, 75} {
		img, err := got.ImageForArch(arch)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if img.Arch != arch || len(img.Kernels) != 2 {
			t.Fatalf("entry %d: %+v", i, img)
		}
	}
}

func TestFatBinaryArchFallback(t *testing.T) {
	img := testImage()
	img.Arch = 61 // sm_61 (P40)
	var fb FatBinary
	fb.AddImage(img, true)
	data := fb.Encode()
	fb2, err := ParseFat(data)
	if err != nil {
		t.Fatal(err)
	}
	// Requesting sm_80 falls back to the best lower arch.
	got, err := fb2.ImageForArch(80)
	if err != nil || got.Arch != 61 {
		t.Fatalf("got %+v err=%v", got, err)
	}
	// Requesting an arch below every entry fails.
	if _, err := fb2.ImageForArch(50); !errors.Is(err, ErrNoMatchingArch) {
		t.Fatalf("err = %v", err)
	}
}

func TestFatEntryCorruptDecompress(t *testing.T) {
	img := testImage()
	var fb FatBinary
	fb.AddImage(img, true)
	// Corrupt the decompressed-length prefix: the RawSize cross-check
	// must reject the mismatch. (A flipped literal byte elsewhere can
	// still be a well-formed stream; the length check is the backstop.)
	fb.Entries[0].Payload[3] ^= 0xff
	if _, err := fb.Entries[0].ImageBytes(); err == nil {
		t.Fatal("corrupt payload decoded")
	}
}

func TestExtractMetadata(t *testing.T) {
	img := testImage()
	// From a raw cubin.
	meta, err := ExtractMetadata(img.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Kernels) != 2 || meta.Kernels[0].Code != nil {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.Kernels[0].Params[0].Kind != ParamPointer {
		t.Fatal("param metadata lost")
	}
	// From a compressed bare cubin (the paper's contribution: metadata
	// from compressed kernels).
	meta, err = ExtractMetadata(Compress(img.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Globals) != 2 {
		t.Fatalf("globals = %+v", meta.Globals)
	}
	// From a fatbin with a compressed entry.
	var fb FatBinary
	fb.AddImage(img, true)
	meta, err = ExtractMetadata(fb.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Kernels) != 2 {
		t.Fatalf("kernels = %d", len(meta.Kernels))
	}
	// Garbage input.
	if _, err := ExtractMetadata([]byte("not a cubin at all")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestQuickImageRoundTrip(t *testing.T) {
	f := func(arch uint32, name string, shared, regs uint32, code []byte, gsize uint64) bool {
		if len(name) > maxNameLen {
			name = name[:maxNameLen]
		}
		img := &Image{
			Arch: arch,
			Kernels: []KernelDesc{{
				Name:          name,
				Params:        []ParamInfo{{0, 8, ParamPointer}},
				SharedMem:     shared,
				RegsPerThread: regs,
				Code:          code,
			}},
			Globals: []GlobalVar{{Name: "g", Size: gsize}},
		}
		got, err := Parse(img.Encode())
		if err != nil {
			return false
		}
		return got.Arch == arch && got.Kernels[0].Name == name &&
			got.Kernels[0].SharedMem == shared &&
			bytes.Equal(got.Kernels[0].Code, code) &&
			got.Globals[0].Size == gsize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompressCubin(b *testing.B) {
	data := testImage().Encode()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Compress(data)
	}
}

func BenchmarkDecompressCubin(b *testing.B) {
	comp := Compress(testImage().Encode())
	raw, _ := Decompress(comp)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: arbitrary bytes never panic any parser — they error or,
// for well-formed-by-luck inputs, parse.
func TestQuickParsersNeverPanic(t *testing.T) {
	f := func(data []byte) bool {
		Parse(data)
		ParseFat(data)
		Decompress(data)
		DecompressedLen(data)
		ExtractMetadata(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// And with plausible magic prefixes to reach deeper paths.
	g := func(tail []byte) bool {
		withMagic := append([]byte{0x43, 0x42, 0x55, 0x4e, 0, 0, 0, 1}, tail...)
		Parse(withMagic)
		ExtractMetadata(withMagic)
		fatMagic := append([]byte{0x46, 0x41, 0x54, 0x42, 0, 0, 0, 1}, tail...)
		ParseFat(fatMagic)
		ExtractMetadata(fatMagic)
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
