package cubin

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Fat binary constants.
const (
	// FatMagic identifies a fat binary container ("FATB").
	FatMagic = 0x46415442
	// FatVersion is the container format version.
	FatVersion = 1
	// maxEntries bounds entries per container.
	maxEntries = 256
)

// Entry flags.
const (
	// FlagCompressed marks an entry whose payload is LZSS-compressed.
	FlagCompressed uint32 = 1 << 0
)

// Fat binary errors.
var (
	// ErrBadFatMagic reports a container that is not a fat binary.
	ErrBadFatMagic = errors.New("cubin: bad fatbin magic")
	// ErrNoMatchingArch reports a container with no image for the
	// requested architecture.
	ErrNoMatchingArch = errors.New("cubin: no image for architecture")
)

// A FatEntry is one per-architecture payload in a fat binary.
type FatEntry struct {
	Arch       uint32
	Flags      uint32
	Payload    []byte // cubin bytes, possibly compressed
	RawSize    uint32 // uncompressed size (equals len(Payload) when uncompressed)
	Compressed bool
}

// A FatBinary bundles cubin images for several architectures, the way
// nvcc embeds one code object per requested SM version.
type FatBinary struct {
	Entries []FatEntry
}

// AddImage appends an image to the container, optionally compressing
// its payload.
func (fb *FatBinary) AddImage(img *Image, compress bool) {
	raw := img.Encode()
	e := FatEntry{Arch: img.Arch, RawSize: uint32(len(raw))}
	if compress {
		e.Payload = Compress(raw)
		e.Flags |= FlagCompressed
		e.Compressed = true
	} else {
		e.Payload = raw
	}
	fb.Entries = append(fb.Entries, e)
}

// Encode serializes the container:
//
//	u32 magic, u32 version, u32 nentries,
//	per entry: u32 arch, u32 flags, u32 rawsize, u32 payloadlen, payload
func (fb *FatBinary) Encode() []byte {
	var b bytes.Buffer
	w := func(v any) { binary.Write(&b, binary.BigEndian, v) }
	w(uint32(FatMagic))
	w(uint32(FatVersion))
	w(uint32(len(fb.Entries)))
	for _, e := range fb.Entries {
		w(e.Arch)
		w(e.Flags)
		w(e.RawSize)
		w(uint32(len(e.Payload)))
		b.Write(e.Payload)
	}
	return b.Bytes()
}

// ParseFat decodes a fat binary container without decompressing or
// parsing its entries.
func ParseFat(data []byte) (*FatBinary, error) {
	r := &imageReader{data: data}
	magic, err := r.u32()
	if err != nil {
		return nil, err
	}
	if magic != FatMagic {
		return nil, fmt.Errorf("%w: %#x", ErrBadFatMagic, magic)
	}
	ver, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ver != FatVersion {
		return nil, fmt.Errorf("%w: fatbin version %d", ErrBadVersion, ver)
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > maxEntries {
		return nil, fmt.Errorf("%w: %d entries", ErrMalformed, n)
	}
	fb := &FatBinary{Entries: make([]FatEntry, n)}
	for i := range fb.Entries {
		e := &fb.Entries[i]
		if e.Arch, err = r.u32(); err != nil {
			return nil, err
		}
		if e.Flags, err = r.u32(); err != nil {
			return nil, err
		}
		if e.RawSize, err = r.u32(); err != nil {
			return nil, err
		}
		pl, err := r.u32()
		if err != nil {
			return nil, err
		}
		p, err := r.bytes(int(pl))
		if err != nil {
			return nil, err
		}
		e.Payload = append([]byte(nil), p...)
		e.Compressed = e.Flags&FlagCompressed != 0
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(data)-r.pos)
	}
	return fb, nil
}

// ImageBytes returns the decompressed cubin bytes of the entry.
func (e *FatEntry) ImageBytes() ([]byte, error) {
	if !e.Compressed {
		return e.Payload, nil
	}
	raw, err := Decompress(e.Payload)
	if err != nil {
		return nil, err
	}
	if uint32(len(raw)) != e.RawSize {
		return nil, fmt.Errorf("%w: decompressed to %d bytes, header says %d", ErrCorrupt, len(raw), e.RawSize)
	}
	return raw, nil
}

// ImageForArch decompresses and parses the entry matching arch,
// falling back to the highest arch not exceeding it (the way the CUDA
// driver selects the best-compatible code object).
func (fb *FatBinary) ImageForArch(arch uint32) (*Image, error) {
	best := -1
	for i, e := range fb.Entries {
		if e.Arch == arch {
			best = i
			break
		}
		if e.Arch < arch && (best < 0 || e.Arch > fb.Entries[best].Arch) {
			best = i
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("%w: sm_%d among %d entries", ErrNoMatchingArch, arch, len(fb.Entries))
	}
	raw, err := fb.Entries[best].ImageBytes()
	if err != nil {
		return nil, err
	}
	return Parse(raw)
}

// ExtractMetadata decompresses (if needed) and parses a cubin's
// kernels and globals without retaining code payloads. This is the
// operation the paper added to Cricket: reading kernel names and
// parameter layouts out of possibly-compressed binaries.
func ExtractMetadata(data []byte) (*Image, error) {
	// Accept either a bare (possibly compressed) cubin or a fatbin.
	if len(data) >= 4 {
		switch binary.BigEndian.Uint32(data) {
		case FatMagic:
			fb, err := ParseFat(data)
			if err != nil {
				return nil, err
			}
			if len(fb.Entries) == 0 {
				return nil, fmt.Errorf("%w: empty fatbin", ErrMalformed)
			}
			raw, err := fb.Entries[0].ImageBytes()
			if err != nil {
				return nil, err
			}
			return stripCode(Parse(raw))
		case Magic:
			return stripCode(Parse(data))
		}
	}
	// Possibly a bare compressed cubin.
	raw, err := Decompress(data)
	if err != nil {
		return nil, fmt.Errorf("%w: neither cubin, fatbin, nor compressed cubin", ErrBadMagic)
	}
	return stripCode(Parse(raw))
}

func stripCode(img *Image, err error) (*Image, error) {
	if err != nil {
		return nil, err
	}
	for i := range img.Kernels {
		img.Kernels[i].Code = nil
	}
	return img, nil
}
