package cubin

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Image format constants.
const (
	// Magic identifies a cubin image ("CUBN").
	Magic = 0x4342554e
	// FormatVersion is the current image format version.
	FormatVersion = 1
	// maxKernels bounds the kernel count a parser will accept.
	maxKernels = 1 << 16
	// maxNameLen bounds symbol names.
	maxNameLen = 1 << 10
)

// Parse errors.
var (
	// ErrBadMagic reports an image that is not a cubin.
	ErrBadMagic = errors.New("cubin: bad magic")
	// ErrBadVersion reports an unsupported format version.
	ErrBadVersion = errors.New("cubin: unsupported format version")
	// ErrMalformed reports a structurally invalid image.
	ErrMalformed = errors.New("cubin: malformed image")
)

// ParamKind classifies kernel parameters for marshaling between host
// and device.
type ParamKind uint8

// Parameter kinds.
const (
	ParamScalar  ParamKind = iota // passed by value
	ParamPointer                  // device pointer
)

// A ParamInfo describes one kernel parameter: its byte offset in the
// argument buffer, its size, and whether it is a device pointer. This
// is the metadata Cricket extracts from cubins so it can marshal
// launch arguments over RPC.
type ParamInfo struct {
	Offset uint16
	Size   uint16
	Kind   ParamKind
}

// A KernelDesc describes one compiled kernel in an image.
type KernelDesc struct {
	// Name is the (mangled) kernel symbol name.
	Name string
	// Params is the parameter layout in declaration order.
	Params []ParamInfo
	// SharedMem is the static shared memory requirement in bytes.
	SharedMem uint32
	// RegsPerThread is the register footprint, used by the occupancy
	// model of the GPU simulator.
	RegsPerThread uint32
	// Code is the compiled instruction payload (opaque to everything
	// except the device simulator, which interprets the leading
	// operation tag).
	Code []byte
}

// ArgBytes returns the total argument-buffer size of the kernel.
func (k *KernelDesc) ArgBytes() int {
	n := 0
	for _, p := range k.Params {
		if end := int(p.Offset) + int(p.Size); end > n {
			n = end
		}
	}
	return n
}

// A GlobalVar describes one device global variable symbol.
type GlobalVar struct {
	Name string
	Size uint64
}

// An Image is a parsed cubin: kernels and globals for one GPU
// architecture.
type Image struct {
	// Arch is the SM architecture the image targets, e.g. 80 for
	// sm_80 (A100), 75 for sm_75 (T4), 61 for sm_61 (P40).
	Arch uint32
	// Kernels are the compiled kernels.
	Kernels []KernelDesc
	// Globals are device global variables.
	Globals []GlobalVar
}

// Kernel returns the kernel descriptor with the given name.
func (img *Image) Kernel(name string) (*KernelDesc, bool) {
	for i := range img.Kernels {
		if img.Kernels[i].Name == name {
			return &img.Kernels[i], true
		}
	}
	return nil, false
}

// Global returns the global variable descriptor with the given name.
func (img *Image) Global(name string) (*GlobalVar, bool) {
	for i := range img.Globals {
		if img.Globals[i].Name == name {
			return &img.Globals[i], true
		}
	}
	return nil, false
}

// Encode serializes the image. Layout (all integers big-endian):
//
//	u32 magic, u32 version, u32 arch,
//	u32 nkernels, then per kernel:
//	    u16 namelen, name, u32 sharedmem, u32 regs,
//	    u16 nparams, per param: u16 offset, u16 size, u8 kind,
//	    u32 codelen, code
//	u32 nglobals, then per global: u16 namelen, name, u64 size
func (img *Image) Encode() []byte {
	var b bytes.Buffer
	w := func(v any) { binary.Write(&b, binary.BigEndian, v) }
	w(uint32(Magic))
	w(uint32(FormatVersion))
	w(img.Arch)
	w(uint32(len(img.Kernels)))
	for i := range img.Kernels {
		k := &img.Kernels[i]
		w(uint16(len(k.Name)))
		b.WriteString(k.Name)
		w(k.SharedMem)
		w(k.RegsPerThread)
		w(uint16(len(k.Params)))
		for _, p := range k.Params {
			w(p.Offset)
			w(p.Size)
			w(uint8(p.Kind))
		}
		w(uint32(len(k.Code)))
		b.Write(k.Code)
	}
	w(uint32(len(img.Globals)))
	for _, g := range img.Globals {
		w(uint16(len(g.Name)))
		b.WriteString(g.Name)
		w(g.Size)
	}
	return b.Bytes()
}

type imageReader struct {
	data []byte
	pos  int
}

func (r *imageReader) u8() (uint8, error) {
	if r.pos+1 > len(r.data) {
		return 0, fmt.Errorf("%w: truncated at %d", ErrMalformed, r.pos)
	}
	v := r.data[r.pos]
	r.pos++
	return v, nil
}

func (r *imageReader) u16() (uint16, error) {
	if r.pos+2 > len(r.data) {
		return 0, fmt.Errorf("%w: truncated at %d", ErrMalformed, r.pos)
	}
	v := binary.BigEndian.Uint16(r.data[r.pos:])
	r.pos += 2
	return v, nil
}

func (r *imageReader) u32() (uint32, error) {
	if r.pos+4 > len(r.data) {
		return 0, fmt.Errorf("%w: truncated at %d", ErrMalformed, r.pos)
	}
	v := binary.BigEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *imageReader) u64() (uint64, error) {
	if r.pos+8 > len(r.data) {
		return 0, fmt.Errorf("%w: truncated at %d", ErrMalformed, r.pos)
	}
	v := binary.BigEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *imageReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.data) {
		return nil, fmt.Errorf("%w: truncated at %d (need %d)", ErrMalformed, r.pos, n)
	}
	v := r.data[r.pos : r.pos+n]
	r.pos += n
	return v, nil
}

func (r *imageReader) name() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if n > maxNameLen {
		return "", fmt.Errorf("%w: name length %d", ErrMalformed, n)
	}
	p, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(p), nil
}

// Parse decodes a cubin image produced by Encode.
func Parse(data []byte) (*Image, error) {
	r := &imageReader{data: data}
	magic, err := r.u32()
	if err != nil {
		return nil, err
	}
	if magic != Magic {
		return nil, fmt.Errorf("%w: %#x", ErrBadMagic, magic)
	}
	ver, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ver != FormatVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	img := &Image{}
	if img.Arch, err = r.u32(); err != nil {
		return nil, err
	}
	nk, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nk > maxKernels {
		return nil, fmt.Errorf("%w: %d kernels", ErrMalformed, nk)
	}
	img.Kernels = make([]KernelDesc, nk)
	for i := range img.Kernels {
		k := &img.Kernels[i]
		if k.Name, err = r.name(); err != nil {
			return nil, err
		}
		if k.SharedMem, err = r.u32(); err != nil {
			return nil, err
		}
		if k.RegsPerThread, err = r.u32(); err != nil {
			return nil, err
		}
		np, err := r.u16()
		if err != nil {
			return nil, err
		}
		k.Params = make([]ParamInfo, np)
		for j := range k.Params {
			p := &k.Params[j]
			if p.Offset, err = r.u16(); err != nil {
				return nil, err
			}
			if p.Size, err = r.u16(); err != nil {
				return nil, err
			}
			kind, err := r.u8()
			if err != nil {
				return nil, err
			}
			if kind > uint8(ParamPointer) {
				return nil, fmt.Errorf("%w: param kind %d", ErrMalformed, kind)
			}
			p.Kind = ParamKind(kind)
		}
		cl, err := r.u32()
		if err != nil {
			return nil, err
		}
		code, err := r.bytes(int(cl))
		if err != nil {
			return nil, err
		}
		k.Code = append([]byte(nil), code...)
	}
	ng, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ng > maxKernels {
		return nil, fmt.Errorf("%w: %d globals", ErrMalformed, ng)
	}
	img.Globals = make([]GlobalVar, ng)
	for i := range img.Globals {
		if img.Globals[i].Name, err = r.name(); err != nil {
			return nil, err
		}
		if img.Globals[i].Size, err = r.u64(); err != nil {
			return nil, err
		}
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(data)-r.pos)
	}
	return img, nil
}
