package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers every int64 nanosecond duration: bucket i counts
// observations in [2^i ns, 2^(i+1) ns).
const numBuckets = 63

// A Histogram is a fixed-size log-bucketed latency histogram with an
// allocation-free, lock-free record path. The zero value is ready to
// use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; 0 means unset (values clamp to >=1)
	max     atomic.Int64
	buckets [numBuckets]atomic.Uint64
}

// bucketOf maps a (clamped, positive) nanosecond value to its bucket.
func bucketOf(ns int64) int {
	return bits.Len64(uint64(ns)) - 1
}

// Observe records one duration. Non-positive durations clamp to 1ns
// so every observation lands in a bucket.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 1 {
		ns = 1
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketOf(ns)].Add(1)
	for {
		old := h.min.Load()
		if old != 0 && old <= ns {
			break
		}
		if h.min.CompareAndSwap(old, ns) {
			break
		}
	}
	for {
		old := h.max.Load()
		if old >= ns {
			break
		}
		if h.max.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Snapshot captures a consistent-enough copy for reporting. Counters
// are read individually, so a snapshot taken concurrently with
// Observe may be off by in-flight observations — fine for metrics.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	s.Min = time.Duration(h.min.Load())
	s.Max = time.Duration(h.max.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Count   uint64
	Sum     time.Duration
	Min     time.Duration
	Max     time.Duration
	Buckets [numBuckets]uint64
}

// Mean returns the average observed duration, or 0 when empty.
func (s *HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by walking the
// buckets and interpolating linearly inside the matching one. The
// estimate is clamped to the observed [Min, Max] range.
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= target {
			lo := int64(1) << uint(i)
			hi := lo << 1
			frac := (target - cum) / float64(n)
			est := time.Duration(float64(lo) + frac*float64(hi-lo))
			if est < s.Min {
				est = s.Min
			}
			if est > s.Max {
				est = s.Max
			}
			return est
		}
		cum = next
	}
	return s.Max
}

// Sub returns the windowed difference s - prev: the snapshot of only
// the observations recorded between the two snapshots of the same
// histogram. Feedback controllers sample on an interval and diff, so
// each control decision sees that interval's traffic rather than the
// lifetime average. Min and Max cannot be diffed exactly (they are
// lifetime extremes), so the window's range is approximated from its
// populated bucket edges, clamped to the lifetime [Min, Max]. A prev
// that is not an earlier snapshot of the same histogram (count went
// backwards) yields the zero snapshot.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	var d HistSnapshot
	if s.Count <= prev.Count {
		return d
	}
	d.Count = s.Count - prev.Count
	d.Sum = s.Sum - prev.Sum
	lo, hi := -1, -1
	for i := range s.Buckets {
		if s.Buckets[i] < prev.Buckets[i] {
			return HistSnapshot{}
		}
		d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
		if d.Buckets[i] > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	if lo >= 0 {
		d.Min = time.Duration(int64(1) << uint(lo))
		if d.Min < s.Min {
			d.Min = s.Min
		}
		d.Max = time.Duration(int64(1) << uint(hi+1))
		if d.Max > s.Max {
			d.Max = s.Max
		}
		if d.Max < d.Min {
			d.Max = d.Min
		}
	}
	return d
}

// Merge folds another snapshot into s, summing counts and widening
// the range — the union view of several histograms (e.g. every
// server-side procedure) as if they were one.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 {
		*s = o
		return
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Min > 0 && (s.Min == 0 || o.Min < s.Min) {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// A HistSet holds one Histogram per procedure number, preallocated so
// Observe never allocates or locks. Procedure numbers at or above the
// set size are dropped.
type HistSet struct {
	h []Histogram
}

// NewHistSet returns a set sized for procedure numbers [0, n).
func NewHistSet(n int) *HistSet {
	return &HistSet{h: make([]Histogram, n)}
}

// Observe records d under proc. Nil sets and out-of-range procs are
// no-ops.
func (s *HistSet) Observe(proc uint32, d time.Duration) {
	if s == nil || int(proc) >= len(s.h) {
		return
	}
	s.h[proc].Observe(d)
}

// Merged returns the union snapshot of every histogram in the set —
// all procedures folded into one distribution. Allocation-free after
// the receiver; used by controllers sampling on a tight interval.
func (s *HistSet) Merged() HistSnapshot {
	var out HistSnapshot
	if s == nil {
		return out
	}
	for i := range s.h {
		if s.h[i].count.Load() == 0 {
			continue
		}
		snap := s.h[i].Snapshot()
		out.Merge(snap)
	}
	return out
}

// Snapshot returns snapshots of every histogram with at least one
// observation, keyed by procedure number.
func (s *HistSet) Snapshot() map[uint32]HistSnapshot {
	if s == nil {
		return nil
	}
	out := make(map[uint32]HistSnapshot)
	for i := range s.h {
		if s.h[i].count.Load() == 0 {
			continue
		}
		out[uint32(i)] = s.h[i].Snapshot()
	}
	return out
}
