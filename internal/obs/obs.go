// Package obs provides per-call observability for the Cricket RPC
// stack: 64-bit call IDs minted on the client and propagated to the
// server inside the ONC RPC credential, per-procedure latency
// histograms, and stage-level spans collected in a bounded ring
// buffer and exportable as JSON.
//
// Observability is disabled by default. Every method on a nil
// *Collector is a no-op, so call sites guard their hot paths with a
// single nil check and pay nothing — no clock reads, no allocations —
// when tracing is off. The record paths themselves (Histogram.Observe,
// Ring.Record) are allocation-free so an enabled collector does not
// disturb zero-alloc pins on the paths it instruments.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Side distinguishes where a span was recorded.
type Side uint8

// Span sides.
const (
	SideClient Side = iota
	SideServer
)

func (s Side) String() string {
	switch s {
	case SideClient:
		return "client"
	case SideServer:
		return "server"
	}
	return fmt.Sprintf("side(%d)", uint8(s))
}

// MarshalJSON renders the side as its name.
func (s Side) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Stage names the portion of a call a span covers.
type Stage uint8

// Span stages. StageCall is a whole logical call as seen by the
// caller; the others attribute slices of it.
const (
	StageCall    Stage = iota // full round trip (client) or batch entry
	StageEncode               // argument marshalling on the client
	StageWire                 // write + server processing + reply receipt
	StageDecode               // reply unmarshalling on the client
	StageRuntime              // server-side dispatch into the runtime
	StageSched                // scheduler bookkeeping
)

func (s Stage) String() string {
	switch s {
	case StageCall:
		return "call"
	case StageEncode:
		return "encode"
	case StageWire:
		return "wire"
	case StageDecode:
		return "decode"
	case StageRuntime:
		return "runtime"
	case StageSched:
		return "sched"
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// MarshalJSON renders the stage as its name.
func (s Stage) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// A Span is one timed slice of a call. Client and server spans of the
// same logical call share a CallID; spans for entries of one
// BATCH_EXEC record additionally carry the entry index.
type Span struct {
	CallID uint64 `json:"call_id"`
	Entry  int32  `json:"entry"` // batch entry index; -1 for a whole call
	Proc   uint32 `json:"proc"`
	Name   string `json:"name,omitempty"` // procedure name, filled at export
	Side   Side   `json:"side"`
	Stage  Stage  `json:"stage"`
	Start  int64  `json:"start_ns"` // nanoseconds since collector start
	Dur    int64  `json:"dur_ns"`
	Sim    int64  `json:"sim_ns,omitempty"` // simulated device time, when known
	Err    int32  `json:"err"`              // in-band status code (CUDA error or accept stat)
}

// Config configures a Collector.
type Config struct {
	// Procs is the size of the per-procedure histogram tables
	// (procedure numbers at or above it are dropped). Zero means 64.
	Procs int
	// RingSize bounds the trace ring. Zero means 4096 spans.
	RingSize int
	// ProcName renders procedure numbers in exports. Nil prints the
	// raw number.
	ProcName func(uint32) string
}

// A Collector mints call IDs and gathers histograms and spans for one
// client or server. All methods are safe for concurrent use and are
// no-ops on a nil receiver.
type Collector struct {
	ids      atomic.Uint64
	client   *HistSet
	server   *HistSet
	device   *HistSet
	ring     *Ring
	procName func(uint32) string
	start    time.Time
}

// New returns a Collector with the given configuration.
func New(cfg Config) *Collector {
	if cfg.Procs <= 0 {
		cfg.Procs = 64
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 4096
	}
	return &Collector{
		client:   NewHistSet(cfg.Procs),
		server:   NewHistSet(cfg.Procs),
		device:   NewHistSet(cfg.Procs),
		ring:     NewRing(cfg.RingSize),
		procName: cfg.ProcName,
		start:    time.Now(),
	}
}

// NextID mints a fresh nonzero call ID. A nil collector returns 0,
// which propagates as "untraced".
func (c *Collector) NextID() uint64 {
	if c == nil {
		return 0
	}
	return c.ids.Add(1)
}

// Now returns nanoseconds since the collector started, for Span.Start.
func (c *Collector) Now() int64 {
	if c == nil {
		return 0
	}
	return int64(time.Since(c.start))
}

// ObserveClient records a client-observed round-trip latency for proc.
func (c *Collector) ObserveClient(proc uint32, d time.Duration) {
	if c == nil {
		return
	}
	c.client.Observe(proc, d)
}

// ObserveServer records a server-side handling time for proc.
func (c *Collector) ObserveServer(proc uint32, d time.Duration) {
	if c == nil {
		return
	}
	c.server.Observe(proc, d)
}

// ObserveDevice records a simulated device/runtime time for proc.
func (c *Collector) ObserveDevice(proc uint32, d time.Duration) {
	if c == nil {
		return
	}
	c.device.Observe(proc, d)
}

// ServerMerged returns the union snapshot of every server-side
// procedure histogram: one distribution of all dispatch latencies.
// Sampling it on an interval and diffing with HistSnapshot.Sub gives
// the windowed view the admission controller feeds on. A nil
// collector returns the zero snapshot.
func (c *Collector) ServerMerged() HistSnapshot {
	if c == nil {
		return HistSnapshot{}
	}
	return c.server.Merged()
}

// ClientMerged is ServerMerged for the client-side histograms.
func (c *Collector) ClientMerged() HistSnapshot {
	if c == nil {
		return HistSnapshot{}
	}
	return c.client.Merged()
}

// RecordSpan appends a span to the trace ring.
func (c *Collector) RecordSpan(s Span) {
	if c == nil {
		return
	}
	c.ring.Record(s)
}

// Spans returns the retained spans in chronological order, with
// procedure names resolved.
func (c *Collector) Spans() []Span {
	if c == nil {
		return nil
	}
	spans := c.ring.Snapshot()
	if c.procName != nil {
		for i := range spans {
			spans[i].Name = c.procName(spans[i].Proc)
		}
	}
	return spans
}

// ProcStats summarises one procedure's histogram for export.
type ProcStats struct {
	Proc   string  `json:"proc"`
	Count  uint64  `json:"count"`
	MinUS  float64 `json:"min_us"`
	P50US  float64 `json:"p50_us"`
	P90US  float64 `json:"p90_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
	MeanUS float64 `json:"mean_us"`
}

// Metrics is the exportable summary of every non-empty histogram.
type Metrics struct {
	Client []ProcStats `json:"client,omitempty"`
	Server []ProcStats `json:"server,omitempty"`
	Device []ProcStats `json:"device,omitempty"`
}

// Metrics summarises all histograms. A nil collector returns the zero
// Metrics.
func (c *Collector) Metrics() Metrics {
	if c == nil {
		return Metrics{}
	}
	return Metrics{
		Client: c.procStats(c.client),
		Server: c.procStats(c.server),
		Device: c.procStats(c.device),
	}
}

func (c *Collector) procStats(set *HistSet) []ProcStats {
	snaps := set.Snapshot()
	procs := make([]uint32, 0, len(snaps))
	for p := range snaps {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	out := make([]ProcStats, 0, len(procs))
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	for _, p := range procs {
		snap := snaps[p]
		name := fmt.Sprintf("proc_%d", p)
		if c.procName != nil {
			name = c.procName(p)
		}
		out = append(out, ProcStats{
			Proc:   name,
			Count:  snap.Count,
			MinUS:  us(snap.Min),
			P50US:  us(snap.Quantile(0.50)),
			P90US:  us(snap.Quantile(0.90)),
			P99US:  us(snap.Quantile(0.99)),
			MaxUS:  us(snap.Max),
			MeanUS: us(snap.Mean()),
		})
	}
	return out
}

// WriteMetricsJSON writes the histogram summary as indented JSON.
func (c *Collector) WriteMetricsJSON(w io.Writer) error {
	data, err := json.MarshalIndent(c.Metrics(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteTraceJSON writes the retained spans as indented JSON.
func (c *Collector) WriteTraceJSON(w io.Writer) error {
	spans := c.Spans()
	if spans == nil {
		spans = []Span{}
	}
	data, err := json.MarshalIndent(spans, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
