package obs

import "time"

// A Windowed pairs a histogram with the snapshot taken at the last
// tick, so interval-based consumers (SLO monitors, the diurnal
// macro-bench phases) read per-window deltas instead of lifetime
// aggregates. Not safe for concurrent Tick calls; Observe on the
// underlying histogram stays lock-free.
type Windowed struct {
	H    *Histogram
	prev HistSnapshot
}

// NewWindowed wraps h with an empty baseline, so the first Tick
// returns everything observed so far.
func NewWindowed(h *Histogram) *Windowed { return &Windowed{H: h} }

// Tick returns the delta since the previous Tick (or since creation)
// and advances the window.
func (w *Windowed) Tick() HistSnapshot {
	cur := w.H.Snapshot()
	d := cur.Sub(w.prev)
	w.prev = cur
	return d
}

// Peek returns the delta since the previous Tick without advancing
// the window.
func (w *Windowed) Peek() HistSnapshot {
	return w.H.Snapshot().Sub(w.prev)
}

// Lifetime returns the full-history snapshot.
func (w *Windowed) Lifetime() HistSnapshot { return w.H.Snapshot() }

// An SLO is a quantile budget over a latency distribution: "the q
// quantile must stay at or under Budget".
type SLO struct {
	Quantile float64
	Budget   time.Duration
}

// Value returns the SLO's quantile estimate over snap.
func (s SLO) Value(snap HistSnapshot) time.Duration {
	return snap.Quantile(s.Quantile)
}

// Met reports whether snap satisfies the budget. An empty window has
// no violating observation, so it trivially meets the SLO.
func (s SLO) Met(snap HistSnapshot) bool {
	if snap.Count == 0 {
		return true
	}
	return s.Value(snap) <= s.Budget
}
