package obs

import "sync"

// A Ring retains the most recent spans in a preallocated circular
// buffer. Record never allocates; older spans are overwritten once
// the buffer wraps.
type Ring struct {
	mu    sync.Mutex
	buf   []Span
	total uint64 // spans ever recorded
}

// NewRing returns a ring retaining up to size spans.
func NewRing(size int) *Ring {
	if size < 1 {
		size = 1
	}
	return &Ring{buf: make([]Span, size)}
}

// Record appends one span, overwriting the oldest when full.
func (r *Ring) Record(s Span) {
	r.mu.Lock()
	r.buf[r.total%uint64(len(r.buf))] = s
	r.total++
	r.mu.Unlock()
}

// Total returns the number of spans ever recorded (including ones
// already overwritten).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot copies the retained spans oldest-first.
func (r *Ring) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	size := uint64(len(r.buf))
	if n > size {
		n = size
	}
	out := make([]Span, n)
	start := r.total - n
	for i := uint64(0); i < n; i++ {
		out[i] = r.buf[(start+i)%size]
	}
	return out
}
