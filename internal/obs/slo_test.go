package obs

import (
	"math/rand"
	"testing"
	"time"
)

func TestWindowedTickDeltas(t *testing.T) {
	h := &Histogram{}
	w := NewWindowed(h)

	// Empty window: Sub of identical snapshots must be the zero
	// snapshot, and an SLO trivially holds over it.
	d := w.Tick()
	if d.Count != 0 || d.Sum != 0 || d.Min != 0 || d.Max != 0 {
		t.Fatalf("empty window not zero: %+v", d)
	}
	slo := SLO{Quantile: 0.99, Budget: time.Millisecond}
	if !slo.Met(d) {
		t.Fatal("empty window violates an SLO")
	}

	h.Observe(100 * time.Microsecond)
	h.Observe(200 * time.Microsecond)
	if p := w.Peek(); p.Count != 2 {
		t.Fatalf("peek count = %d, want 2", p.Count)
	}
	d = w.Tick()
	if d.Count != 2 {
		t.Fatalf("window count = %d, want 2", d.Count)
	}
	// Next window sees only new observations.
	h.Observe(time.Second)
	d = w.Tick()
	if d.Count != 1 {
		t.Fatalf("second window count = %d, want 1", d.Count)
	}
	if q := d.Quantile(0.5); q != time.Second {
		t.Fatalf("second window p50 = %v, want 1s (old observations leaked in)", q)
	}
	if w.Lifetime().Count != 3 {
		t.Fatalf("lifetime count = %d, want 3", w.Lifetime().Count)
	}
}

// TestWindowSingleBucket pins the single-bucket window: every
// quantile must land inside the bucket's range, clamped to the
// window's approximated [Min, Max].
func TestWindowSingleBucket(t *testing.T) {
	h := &Histogram{}
	w := NewWindowed(h)
	w.Tick()
	for i := 0; i < 10; i++ {
		h.Observe(betweenPow2(10)) // all in bucket [1024ns, 2048ns)
	}
	d := w.Tick()
	if d.Count != 10 {
		t.Fatalf("count = %d", d.Count)
	}
	lo, hi := time.Duration(1<<10), time.Duration(1<<11)
	if d.Min < lo || d.Max > hi {
		t.Fatalf("window range [%v, %v] outside bucket [%v, %v)", d.Min, d.Max, lo, hi)
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		v := d.Quantile(q)
		if v < d.Min || v > d.Max {
			t.Fatalf("q%.2f = %v outside window [%v, %v]", q, v, d.Min, d.Max)
		}
	}
}

func betweenPow2(exp uint) time.Duration {
	return time.Duration(int64(1)<<exp + rand.Int63n(int64(1)<<exp))
}

// TestWindowMergeAfterSubIdentity checks the macro-bench invariant:
// splitting a histogram's history into consecutive windows with Sub
// and folding the windows back together with Merge reproduces the
// lifetime counts, sums, and buckets exactly.
func TestWindowMergeAfterSubIdentity(t *testing.T) {
	h := &Histogram{}
	w := NewWindowed(h)
	rng := rand.New(rand.NewSource(42))

	// A bursty diurnal shape: quiet windows (often empty), a ramp,
	// a heavy peak with a wide latency spread, then quiet again.
	phases := []struct {
		windows int
		perTick int
		spread  int64
	}{
		{windows: 4, perTick: 0, spread: 0},                // trough: empty windows
		{windows: 3, perTick: 5, spread: int64(1 << 12)},   // ramp
		{windows: 5, perTick: 200, spread: int64(1 << 22)}, // peak, bursty
		{windows: 4, perTick: 1, spread: int64(1 << 8)},    // cooldown: single-bucket-ish
	}
	var windows []HistSnapshot
	for _, ph := range phases {
		for wi := 0; wi < ph.windows; wi++ {
			for i := 0; i < ph.perTick; i++ {
				h.Observe(time.Duration(1 + rng.Int63n(1+ph.spread)))
			}
			windows = append(windows, w.Tick())
		}
	}

	var merged HistSnapshot
	for _, d := range windows {
		merged.Merge(d)
	}
	life := h.Snapshot()
	if merged.Count != life.Count || merged.Sum != life.Sum {
		t.Fatalf("merged count/sum %d/%v, lifetime %d/%v", merged.Count, merged.Sum, life.Count, life.Sum)
	}
	if merged.Buckets != life.Buckets {
		t.Fatalf("merged buckets diverge from lifetime")
	}
	// Min/Max cannot regress outside the lifetime extremes.
	if merged.Min < life.Min || merged.Max > life.Max {
		t.Fatalf("merged range [%v, %v] outside lifetime [%v, %v]", merged.Min, merged.Max, life.Min, life.Max)
	}
	// Quantiles over the merged view must match the lifetime view
	// bucket-for-bucket (same buckets, same count ⇒ same estimate up
	// to the Min/Max clamp).
	for _, q := range []float64{0.5, 0.9, 0.99} {
		mv, lv := merged.Quantile(q), life.Quantile(q)
		if mv < lv/2 || mv > lv*2 {
			t.Fatalf("q%.2f: merged %v vs lifetime %v", q, mv, lv)
		}
	}
}

// TestWindowCountRegression: a Sub against a snapshot that is not an
// earlier view of the same histogram must yield the zero snapshot,
// never negative counts.
func TestWindowCountRegression(t *testing.T) {
	h1, h2 := &Histogram{}, &Histogram{}
	for i := 0; i < 5; i++ {
		h1.Observe(time.Microsecond)
	}
	h2.Observe(time.Second)
	d := h2.Snapshot().Sub(h1.Snapshot())
	if d != (HistSnapshot{}) {
		t.Fatalf("count-regression Sub yielded %+v, want zero snapshot", d)
	}
	// Per-bucket regression with a larger total count must also zero.
	for i := 0; i < 10; i++ {
		h2.Observe(time.Second)
	}
	d = h2.Snapshot().Sub(h1.Snapshot())
	if d != (HistSnapshot{}) {
		t.Fatalf("bucket-regression Sub yielded %+v, want zero snapshot", d)
	}
}

func TestSLOMetBoundary(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	at := SLO{Quantile: 0.99, Budget: s.Quantile(0.99)}
	if !at.Met(s) {
		t.Fatal("budget equal to the quantile reported violated")
	}
	under := SLO{Quantile: 0.99, Budget: s.Quantile(0.99) - 1}
	if under.Met(s) {
		t.Fatal("budget below the quantile reported met")
	}
}
