package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10}, {1 << 40, 40},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	h.Observe(0) // clamps to 1ns
	h.Observe(100 * time.Nanosecond)
	h.Observe(100 * time.Microsecond)
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.Min != 1 {
		t.Errorf("min = %v, want 1ns", s.Min)
	}
	if s.Max != 100*time.Microsecond {
		t.Errorf("max = %v, want 100µs", s.Max)
	}
	if s.Sum != 1+100+100_000 {
		t.Errorf("sum = %v", s.Sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 100 observations in [1µs, 2µs): p50 and p99 both land there.
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond + time.Duration(i)*10*time.Nanosecond)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := s.Quantile(q)
		if got < time.Microsecond || got >= 2*time.Microsecond {
			t.Errorf("Quantile(%v) = %v, want within [1µs, 2µs)", q, got)
		}
	}
	if got := s.Quantile(0); got < s.Min || got > s.Max {
		t.Errorf("Quantile(0) = %v outside [%v, %v]", got, s.Min, s.Max)
	}
	if got := s.Quantile(1); got != s.Max {
		t.Errorf("Quantile(1) = %v, want max %v", got, s.Max)
	}
}

func TestHistogramQuantileSplit(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got >= 10*time.Microsecond {
		t.Errorf("p50 = %v, want ~1µs", got)
	}
	if got := s.Quantile(0.99); got < 500*time.Microsecond {
		t.Errorf("p99 = %v, want ~1ms", got)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if s.Mean() != 0 {
		t.Errorf("empty Mean = %v, want 0", s.Mean())
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	var h Histogram
	// All observations land in bucket [1µs, 2µs); every quantile must
	// come back inside the observed [Min, Max], including the clamped
	// out-of-range inputs.
	h.Observe(1200 * time.Nanosecond)
	h.Observe(1500 * time.Nanosecond)
	h.Observe(1800 * time.Nanosecond)
	s := h.Snapshot()
	for _, q := range []float64{-0.5, 0, 0.25, 0.5, 0.75, 1, 1.5} {
		got := s.Quantile(q)
		if got < s.Min || got > s.Max {
			t.Errorf("Quantile(%v) = %v outside observed [%v, %v]", q, got, s.Min, s.Max)
		}
	}
	if got := s.Quantile(1); got != s.Max {
		t.Errorf("Quantile(1) = %v, want max %v", got, s.Max)
	}
	if got := s.Quantile(0); got < s.Min {
		t.Errorf("Quantile(0) = %v below min %v", got, s.Min)
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Microsecond)
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 5*time.Microsecond {
			t.Errorf("single-sample Quantile(%v) = %v, want 5µs", q, got)
		}
	}
}

// TestSnapshotSub covers the windowed-delta path the feedback
// controllers sample: only the observations between two snapshots.
func TestSnapshotSub(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	prev := h.Snapshot()
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	cur := h.Snapshot()
	d := cur.Sub(prev)
	if d.Count != 10 {
		t.Fatalf("delta count = %d, want 10", d.Count)
	}
	if d.Sum != 10*time.Millisecond {
		t.Fatalf("delta sum = %v, want 10ms", d.Sum)
	}
	// The window holds only ~1ms observations: its p50 must be near
	// 1ms even though the lifetime histogram is 90% 1µs.
	if p50 := d.Quantile(0.5); p50 < 500*time.Microsecond {
		t.Fatalf("delta p50 = %v, want ~1ms", p50)
	}
	if d.Min < 512*time.Microsecond || d.Max < d.Min {
		t.Fatalf("delta range [%v, %v] does not cover the window", d.Min, d.Max)
	}
	// An empty window diffs to the zero snapshot.
	if z := cur.Sub(cur); z.Count != 0 || z.Quantile(0.99) != 0 {
		t.Fatalf("self-delta not empty: %+v", z)
	}
	// A reset histogram (count going backwards) diffs to zero rather
	// than underflowing.
	if z := prev.Sub(cur); z.Count != 0 {
		t.Fatalf("backwards delta not empty: %+v", z)
	}
}

func TestSnapshotMergeAndMerged(t *testing.T) {
	set := NewHistSet(8)
	for i := 0; i < 50; i++ {
		set.Observe(1, time.Microsecond)
	}
	for i := 0; i < 50; i++ {
		set.Observe(5, time.Millisecond)
	}
	m := set.Merged()
	if m.Count != 100 {
		t.Fatalf("merged count = %d, want 100", m.Count)
	}
	if m.Min != time.Microsecond || m.Max != time.Millisecond {
		t.Fatalf("merged range [%v, %v]", m.Min, m.Max)
	}
	if p99 := m.Quantile(0.99); p99 < 500*time.Microsecond {
		t.Fatalf("merged p99 = %v, want ~1ms", p99)
	}
	if p25 := m.Quantile(0.25); p25 > 10*time.Microsecond {
		t.Fatalf("merged p25 = %v, want ~1µs", p25)
	}
	var nilSet *HistSet
	if z := nilSet.Merged(); z.Count != 0 {
		t.Fatalf("nil set merged = %+v", z)
	}
	var nilCol *Collector
	if z := nilCol.ServerMerged(); z.Count != 0 {
		t.Fatalf("nil collector merged = %+v", z)
	}
}

// TestSnapshotSubThenMergeWindowing is the controller's actual
// sampling pattern: merge the per-proc set, diff against the previous
// merge, read windowed quantiles.
func TestSnapshotSubThenMergeWindowing(t *testing.T) {
	c := New(Config{Procs: 8})
	for i := 0; i < 20; i++ {
		c.ObserveServer(2, 10*time.Microsecond)
	}
	prev := c.ServerMerged()
	for i := 0; i < 20; i++ {
		c.ObserveServer(3, 2*time.Millisecond)
	}
	d := c.ServerMerged().Sub(prev)
	if d.Count != 20 {
		t.Fatalf("windowed count = %d, want 20", d.Count)
	}
	if p50 := d.Quantile(0.5); p50 < time.Millisecond {
		t.Fatalf("windowed p50 = %v, want ~2ms", p50)
	}
}

func TestHistogramZeroAlloc(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(42 * time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per run, want 0", allocs)
	}
}

func TestHistSetOutOfRange(t *testing.T) {
	s := NewHistSet(4)
	s.Observe(3, time.Microsecond)
	s.Observe(4, time.Microsecond) // dropped
	s.Observe(1000, time.Microsecond)
	snap := s.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d procs, want 1", len(snap))
	}
	if snap[3].Count != 1 {
		t.Fatalf("proc 3 count = %d, want 1", snap[3].Count)
	}
}

func TestRingWrap(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Span{CallID: uint64(i + 1)})
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	spans := r.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := uint64(7 + i); s.CallID != want {
			t.Errorf("span %d id = %d, want %d (oldest-first)", i, s.CallID, want)
		}
	}
}

func TestNilCollectorNoops(t *testing.T) {
	var c *Collector
	if id := c.NextID(); id != 0 {
		t.Errorf("nil NextID = %d, want 0", id)
	}
	c.ObserveClient(1, time.Microsecond)
	c.ObserveServer(1, time.Microsecond)
	c.ObserveDevice(1, time.Microsecond)
	c.RecordSpan(Span{})
	if spans := c.Spans(); spans != nil {
		t.Errorf("nil Spans = %v, want nil", spans)
	}
	m := c.Metrics()
	if len(m.Client)+len(m.Server)+len(m.Device) != 0 {
		t.Errorf("nil Metrics non-empty: %+v", m)
	}
	if c.Now() != 0 {
		t.Errorf("nil Now != 0")
	}
}

func TestCollectorIDsUnique(t *testing.T) {
	c := New(Config{})
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := make(map[uint64]bool, goroutines*per)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := make([]uint64, per)
			for i := range ids {
				ids[i] = c.NextID()
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range ids {
				if id == 0 || seen[id] {
					t.Errorf("duplicate or zero id %d", id)
					return
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestCollectorConcurrent(t *testing.T) {
	c := New(Config{Procs: 8, RingSize: 64})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.ObserveClient(uint32(g%8), time.Duration(i)*time.Nanosecond)
				c.RecordSpan(Span{CallID: c.NextID(), Proc: uint32(g)})
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			c.Metrics()
			c.Spans()
		}
	}()
	wg.Wait()
	<-done
}

func TestMetricsJSON(t *testing.T) {
	c := New(Config{Procs: 8, ProcName: func(p uint32) string {
		if p == 2 {
			return "CUDA_MALLOC"
		}
		return "?"
	}})
	for i := 0; i < 10; i++ {
		c.ObserveClient(2, 5*time.Microsecond)
		c.ObserveServer(2, 2*time.Microsecond)
	}
	var buf bytes.Buffer
	if err := c.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("metrics JSON invalid: %v\n%s", err, buf.String())
	}
	if len(m.Client) != 1 || m.Client[0].Proc != "CUDA_MALLOC" || m.Client[0].Count != 10 {
		t.Fatalf("client stats = %+v", m.Client)
	}
	if m.Client[0].P50US <= 0 || m.Client[0].P99US < m.Client[0].P50US {
		t.Fatalf("quantiles inconsistent: %+v", m.Client[0])
	}
	if len(m.Server) != 1 || m.Server[0].Count != 10 {
		t.Fatalf("server stats = %+v", m.Server)
	}
}

func TestTraceJSON(t *testing.T) {
	c := New(Config{RingSize: 16, ProcName: func(p uint32) string { return "PROC" }})
	c.RecordSpan(Span{CallID: 7, Entry: -1, Proc: 3, Side: SideServer, Stage: StageRuntime, Dur: 1500})
	var buf bytes.Buffer
	if err := c.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"call_id": 7`, `"side": "server"`, `"stage": "runtime"`, `"name": "PROC"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace JSON missing %s:\n%s", want, out)
		}
	}
	var raw []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if len(raw) != 1 {
		t.Fatalf("trace has %d spans, want 1", len(raw))
	}
}
