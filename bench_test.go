package repro

// This file regenerates every table and figure of the paper's
// evaluation as Go benchmarks. Wall-clock ns/op measures this
// implementation; the paper's metric is the SIMULATED time, reported
// per platform via b.ReportMetric as sim_ms/op (Figs 5-6) or MiB/s
// (Fig 7). Workloads are scaled down from the paper's sizes so the
// suite completes quickly; cmd/benchharness runs the full paper scale
// and EXPERIMENTS.md records those numbers.

import (
	"testing"

	"cricket/internal/apps"
	"cricket/internal/bench"
	"cricket/internal/guest"
)

// reportRows runs one experiment per benchmark iteration and reports
// each platform's simulated result as a custom metric.
func reportRows(b *testing.B, unit string, run func() ([]bench.Row, error)) {
	b.Helper()
	var rows []bench.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Value, unit+"_"+sanitize(r.Platform))
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkTable1Configs materializes the Table 1 configuration
// matrix (a smoke benchmark: the table is static).
func BenchmarkTable1Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(guest.All()) != 5 {
			b.Fatal("platform set changed")
		}
		_ = bench.Table1()
	}
}

// BenchmarkFig5a_MatrixMul regenerates Fig 5a (matrixMul execution
// time per platform, simulated seconds).
func BenchmarkFig5a_MatrixMul(b *testing.B) {
	reportRows(b, "sim_s", func() ([]bench.Row, error) { return bench.Fig5a(bench.ScaleCI) })
}

// BenchmarkFig5b_LinearSolver regenerates Fig 5b.
func BenchmarkFig5b_LinearSolver(b *testing.B) {
	reportRows(b, "sim_s", func() ([]bench.Row, error) { return bench.Fig5b(bench.ScaleCI) })
}

// BenchmarkFig5c_Histogram regenerates Fig 5c.
func BenchmarkFig5c_Histogram(b *testing.B) {
	reportRows(b, "sim_s", func() ([]bench.Row, error) { return bench.Fig5c(bench.ScaleCI) })
}

// benchCalls is the per-iteration call count for the Fig 6
// microbenchmarks (paper: 100,000; per-call metrics are
// scale-independent).
const benchCalls = 1000

// BenchmarkFig6a_GetDeviceCount regenerates Fig 6a.
func BenchmarkFig6a_GetDeviceCount(b *testing.B) {
	reportRows(b, "sim_s", func() ([]bench.Row, error) { return bench.Fig6(bench.MicroGetDeviceCount, benchCalls) })
}

// BenchmarkFig6b_MallocFree regenerates Fig 6b.
func BenchmarkFig6b_MallocFree(b *testing.B) {
	reportRows(b, "sim_s", func() ([]bench.Row, error) { return bench.Fig6(bench.MicroMallocFree, benchCalls) })
}

// BenchmarkFig6c_KernelLaunch regenerates Fig 6c.
func BenchmarkFig6c_KernelLaunch(b *testing.B) {
	reportRows(b, "sim_s", func() ([]bench.Row, error) { return bench.Fig6(bench.MicroKernelLaunch, benchCalls) })
}

// benchBWBytes is the transfer size for the Fig 7 benchmarks
// (paper: 512 MiB; bandwidth converges well before that).
const benchBWBytes = 32 << 20

// BenchmarkFig7a_BandwidthD2H regenerates Fig 7a.
func BenchmarkFig7a_BandwidthD2H(b *testing.B) {
	reportRows(b, "MiBps", func() ([]bench.Row, error) { return bench.Fig7(apps.DeviceToHost, benchBWBytes, 2) })
}

// BenchmarkFig7b_BandwidthH2D regenerates Fig 7b.
func BenchmarkFig7b_BandwidthH2D(b *testing.B) {
	reportRows(b, "MiBps", func() ([]bench.Row, error) { return bench.Fig7(apps.HostToDevice, benchBWBytes, 2) })
}

// BenchmarkAblationOffloads regenerates the §4.2 ethtool experiment.
func BenchmarkAblationOffloads(b *testing.B) {
	reportRows(b, "MiBps", func() ([]bench.Row, error) { return bench.AblationOffloads(benchBWBytes, 2) })
}

// BenchmarkAblationTransferMethods compares Cricket's four
// memory-transfer strategies.
func BenchmarkAblationTransferMethods(b *testing.B) {
	reportRows(b, "MiBps", func() ([]bench.Row, error) { return bench.AblationTransferMethods(benchBWBytes) })
}

// BenchmarkAblationCubinCompression compares raw and compressed
// module loading.
func BenchmarkAblationCubinCompression(b *testing.B) {
	reportRows(b, "sim_us", bench.AblationCubinCompression)
}

// BenchmarkAblationMTU compares IP MTU 1500 and 9000.
func BenchmarkAblationMTU(b *testing.B) {
	reportRows(b, "MiBps", bench.AblationMTU)
}

// BenchmarkAblationFutureWork projects the paper's §5 outlook
// (RustyHermit with TSO, then vDPA).
func BenchmarkAblationFutureWork(b *testing.B) {
	reportRows(b, "MiBps", func() ([]bench.Row, error) { return bench.AblationFutureWork(benchBWBytes) })
}
