// LinearSolver example: the dense LU solve of Fig 5b on a unikernel.
// The application uploads the system every iteration — the most
// transfer-heavy workload of the evaluation — yet shows the smallest
// unikernel overhead because GPU compute dominates.
//
//	go run ./examples/linearsolver [-n 128] [-iters 10]
package main

import (
	"flag"
	"fmt"
	"log"

	"cricket/internal/apps"
	"cricket/internal/core"
	"cricket/internal/guest"
)

func main() {
	n := flag.Int("n", 128, "matrix dimension")
	iters := flag.Int("iters", 10, "solve iterations")
	flag.Parse()

	fmt.Printf("cuSolverDn-style LU solve, %dx%d, %d iterations:\n\n", *n, *n, *iters)
	var native float64
	for _, p := range []guest.Platform{guest.NativeRust(), guest.RustyHermit()} {
		cluster := core.NewCluster()
		vg, err := cluster.Connect(p)
		if err != nil {
			log.Fatal(err)
		}
		res, err := apps.LinearSolver{N: *n, Iterations: *iters}.Run(vg)
		vg.Close()
		cluster.Close()
		if err != nil {
			log.Fatalf("%s: %v", p.Name, err)
		}
		if !res.Verified {
			log.Fatalf("%s: solution did not verify", p.Name)
		}
		if p.Name == "Rust" {
			native = res.Total().Seconds()
		}
		over := ""
		if p.Name != "Rust" && native > 0 {
			over = fmt.Sprintf("  (+%.1f%% over native)", 100*(res.Total().Seconds()/native-1))
		}
		fmt.Printf("  %-7s %9.2f ms, %d API calls, %.1f MiB transferred%s\n",
			p.Name, res.Total().Seconds()*1e3, res.Stats.APICalls,
			float64(res.Stats.BytesToDevice+res.Stats.BytesFromDevice)/(1<<20), over)
	}
	fmt.Println("\n(Paper §4.1: RustyHermit adds only ≈26.6% here, its smallest overhead,")
	fmt.Println(" because kernel execution hides the per-call RPC latency.)")
}
