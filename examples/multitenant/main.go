// Multitenant example: the deployment model that motivates the paper
// (Fig 2). Many unikernels — each a single application — share one
// remote A100 through a single Cricket server, with the scheduler
// tracking per-client usage. Static GPU assignment could never serve
// this many isolated instances; Cricket's RPC decoupling can.
//
//	go run ./examples/multitenant [-clients 12]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math"
	"sync"

	"cricket/internal/core"
	"cricket/internal/cubin"
	"cricket/internal/cuda"
	"cricket/internal/gpu"
	"cricket/internal/guest"
)

func main() {
	clients := flag.Int("clients", 12, "number of unikernel clients")
	flag.Parse()

	cluster := core.NewCluster(gpu.SpecA100)
	defer cluster.Close()

	var fb cubin.FatBinary
	fb.AddImage(cuda.BuiltinImage(80), true)
	image := fb.Encode()

	// Alternate RustyHermit and Unikraft instances, as a mixed fleet
	// would.
	var wg sync.WaitGroup
	var vgs []*core.VirtualGPU
	results := make([]float32, *clients)
	for i := 0; i < *clients; i++ {
		platform := guest.RustyHermit()
		if i%2 == 1 {
			platform = guest.Unikraft()
		}
		vg, err := cluster.Connect(platform)
		if err != nil {
			log.Fatal(err)
		}
		vgs = append(vgs, vg)
		wg.Add(1)
		go func(i int, vg *core.VirtualGPU) {
			defer wg.Done()
			mod, err := vg.LoadModule(image)
			if err != nil {
				log.Fatal(err)
			}
			reduce, err := mod.Function(cuda.KernelReduceSum)
			if err != nil {
				log.Fatal(err)
			}
			const n = 4096
			in, err := vg.Alloc(n * 4)
			if err != nil {
				log.Fatal(err)
			}
			out, err := vg.Alloc(4)
			if err != nil {
				log.Fatal(err)
			}
			host := make([]byte, n*4)
			for j := 0; j < n; j++ {
				binary.LittleEndian.PutUint32(host[j*4:], math.Float32bits(float32(i+1)))
			}
			if err := in.Write(host); err != nil {
				log.Fatal(err)
			}
			args := cuda.NewArgBuffer().Ptr(out.Ptr()).Ptr(in.Ptr()).U32(n).Bytes()
			if err := vg.Launch(reduce, gpu.Dim3{X: 1, Y: 1, Z: 1}, gpu.Dim3{X: 256, Y: 1, Z: 1}, 0, args); err != nil {
				log.Fatal(err)
			}
			res, err := out.Read()
			if err != nil {
				log.Fatal(err)
			}
			results[i] = math.Float32frombits(binary.LittleEndian.Uint32(res))
		}(i, vg)
	}
	wg.Wait()

	ok := true
	for i, got := range results {
		if got != float32((i+1)*4096) {
			ok = false
			fmt.Printf("client %d: got %g, want %d\n", i, got, (i+1)*4096)
		}
	}
	fmt.Printf("%d unikernel clients shared one A100: isolation intact = %v\n", *clients, ok)

	fmt.Println("\nscheduler view (per-client usage):")
	for _, u := range cluster.Cricket.Scheduler().Clients() {
		fmt.Printf("  %-12s launches=%d\n", u.ID, u.Launches)
	}
	st := cluster.Cricket.Stats()
	fmt.Printf("\nserver totals: %d calls, %d kernel launches, %d B to GPU\n",
		st.Calls, st.KernelLaunches, st.BytesToGPU)

	for _, vg := range vgs {
		vg.Close()
	}
}
