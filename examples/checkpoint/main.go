// Checkpoint example: the checkpoint/restart capability Cricket's
// decoupling enables (paper §1, §5): because the server owns all GPU
// state, it can snapshot device memory and roll it back — the
// mechanism behind runtime reorganization of unikernel workloads.
//
// The example trains a toy iterative computation, checkpoints halfway,
// corrupts the state, restores, and finishes correctly.
//
//	go run ./examples/checkpoint
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"cricket/internal/core"
	"cricket/internal/cubin"
	"cricket/internal/cuda"
	"cricket/internal/gpu"
	"cricket/internal/guest"
)

const n = 2048

func sum(vg *core.VirtualGPU, f cuda.Function, in, out *core.Buffer) float32 {
	args := cuda.NewArgBuffer().Ptr(out.Ptr()).Ptr(in.Ptr()).U32(n).Bytes()
	if err := vg.Launch(f, gpu.Dim3{X: 1, Y: 1, Z: 1}, gpu.Dim3{X: 256, Y: 1, Z: 1}, 0, args); err != nil {
		log.Fatal(err)
	}
	res, err := out.Read()
	if err != nil {
		log.Fatal(err)
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(res))
}

func main() {
	cluster := core.NewCluster()
	defer cluster.Close()
	vg, err := cluster.Connect(guest.RustyHermit())
	if err != nil {
		log.Fatal(err)
	}
	defer vg.Close()

	var fb cubin.FatBinary
	fb.AddImage(cuda.BuiltinImage(80), true)
	mod, err := vg.LoadModule(fb.Encode())
	if err != nil {
		log.Fatal(err)
	}
	reduce, err := mod.Function(cuda.KernelReduceSum)
	if err != nil {
		log.Fatal(err)
	}

	in, err := vg.Alloc(n * 4)
	if err != nil {
		log.Fatal(err)
	}
	out, err := vg.Alloc(4)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: establish state on the device.
	host := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(host[i*4:], math.Float32bits(2.5))
	}
	if err := in.Write(host); err != nil {
		log.Fatal(err)
	}
	before := sum(vg, reduce, in, out)
	fmt.Printf("state established: sum = %g (want %g)\n", before, float32(2.5*n))

	// Checkpoint the whole device.
	if err := vg.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	snap := cluster.Cricket.LatestSnapshot(0)
	fmt.Printf("checkpointed %d allocations, %d bytes of device memory\n", snap.Allocations(), snap.Bytes())

	// Disaster: the state is overwritten (a crashed unikernel, a
	// rescheduled tenant, a failed experiment...).
	if err := in.Memset(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after corruption: sum = %g\n", sum(vg, reduce, in, out))

	// Restore and continue where we left off.
	if err := vg.Restore(); err != nil {
		log.Fatal(err)
	}
	after := sum(vg, reduce, in, out)
	fmt.Printf("after restore: sum = %g (recovered = %v)\n", after, after == before)
}
