// Quickstart: a GPU application running in a simulated RustyHermit
// unikernel, using a remote (simulated) A100 through the Cricket
// virtualization layer.
//
// It allocates device memory, uploads two vectors, launches the
// vectorAdd kernel from a compressed fat binary via the cuModule API,
// downloads the result, and prints the simulated end-to-end time.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"cricket/internal/core"
	"cricket/internal/cubin"
	"cricket/internal/cuda"
	"cricket/internal/gpu"
	"cricket/internal/guest"
)

func main() {
	// One GPU node with an A100, as in the paper's evaluation setup.
	cluster := core.NewCluster(gpu.SpecA100)
	defer cluster.Close()

	// A unikernel client: every CUDA call below travels over ONC RPC
	// with RustyHermit's network-path costs on the virtual clock.
	vg, err := cluster.Connect(guest.RustyHermit())
	if err != nil {
		log.Fatal(err)
	}
	defer vg.Close()

	prop, err := vg.DeviceProperties(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote GPU: %s (sm_%d%d, %d SMs)\n", prop.Name, prop.Major, prop.Minor, prop.MultiProcessorCount)

	// Load the kernels the way the paper's extended Cricket does:
	// from a compressed cubin inside a fat binary, via cuModuleLoad.
	var fb cubin.FatBinary
	fb.AddImage(cuda.BuiltinImage(80), true)
	mod, err := vg.LoadModule(fb.Encode())
	if err != nil {
		log.Fatal(err)
	}
	vecAdd, err := mod.Function(cuda.KernelVectorAdd)
	if err != nil {
		log.Fatal(err)
	}

	const n = 1024
	a, err := vg.Alloc(n * 4)
	if err != nil {
		log.Fatal(err)
	}
	bBuf, err := vg.Alloc(n * 4)
	if err != nil {
		log.Fatal(err)
	}
	c, err := vg.Alloc(n * 4)
	if err != nil {
		log.Fatal(err)
	}

	host := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(host[i*4:], math.Float32bits(float32(i)))
	}
	if err := a.Write(host); err != nil {
		log.Fatal(err)
	}
	if err := bBuf.Write(host); err != nil {
		log.Fatal(err)
	}

	args := cuda.NewArgBuffer().Ptr(a.Ptr()).Ptr(bBuf.Ptr()).Ptr(c.Ptr()).I32(n).Bytes()
	if err := vg.Launch(vecAdd, gpu.Dim3{X: 4, Y: 1, Z: 1}, gpu.Dim3{X: 256, Y: 1, Z: 1}, 0, args); err != nil {
		log.Fatal(err)
	}

	out, err := c.Read()
	if err != nil {
		log.Fatal(err)
	}
	ok := true
	for i := 0; i < n; i++ {
		if math.Float32frombits(binary.LittleEndian.Uint32(out[i*4:])) != float32(2*i) {
			ok = false
			break
		}
	}

	stats := vg.Stats()
	fmt.Printf("vectorAdd of %d elements: correct=%v\n", n, ok)
	fmt.Printf("CUDA API calls forwarded: %d (%d B up, %d B down)\n",
		stats.APICalls, stats.BytesToDevice, stats.BytesFromDevice)
	fmt.Printf("simulated time in the %s unikernel: %v\n", vg.Platform().Name, vg.Now())
}
