// GEMM example: the cuBLAS/cuSolver-style library layer over Cricket.
// Most GPU applications use CUDA libraries rather than raw kernels
// (paper §3.3); this example multiplies matrices and solves a dense
// linear system through culib from a simulated Unikraft unikernel —
// no kernel-argument marshaling in sight.
//
//	go run ./examples/gemm
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"cricket/internal/core"
	"cricket/internal/culib"
	"cricket/internal/guest"
)

func main() {
	cluster := core.NewCluster()
	defer cluster.Close()
	vg, err := cluster.Connect(guest.Unikraft())
	if err != nil {
		log.Fatal(err)
	}
	defer vg.Close()

	h, err := culib.Create(vg)
	if err != nil {
		log.Fatal(err)
	}
	defer h.Destroy()

	// C = A × B on the remote GPU.
	const m, k, n = 64, 48, 96
	a, err := h.NewMatrix(m, k)
	if err != nil {
		log.Fatal(err)
	}
	b, err := h.NewMatrix(k, n)
	if err != nil {
		log.Fatal(err)
	}
	c, err := h.NewMatrix(m, n)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	av := make([]float32, m*k)
	bv := make([]float32, k*n)
	for i := range av {
		av[i] = rng.Float32()
	}
	for i := range bv {
		bv[i] = rng.Float32()
	}
	if err := h.SetMatrix(a, av); err != nil {
		log.Fatal(err)
	}
	if err := h.SetMatrix(b, bv); err != nil {
		log.Fatal(err)
	}
	if err := h.Sgemm(c, a, b); err != nil {
		log.Fatal(err)
	}
	cv, err := h.GetMatrix(c)
	if err != nil {
		log.Fatal(err)
	}
	// Spot-check one element against the host.
	var want float32
	for p := 0; p < k; p++ {
		want += av[p] * bv[p*n]
	}
	fmt.Printf("Sgemm %dx%dx%d: C[0,0] = %.4f (host: %.4f)\n", m, k, n, cv[0], want)

	// Solve a dense system with the cuSolver-style flow.
	const dim = 40
	A := make([]float64, dim*dim)
	xTrue := make([]float64, dim)
	for i := range A {
		A[i] = rng.Float64()*2 - 1
	}
	for i := 0; i < dim; i++ {
		A[i*dim+i] += dim
		xTrue[i] = float64(i) / 3
	}
	rhs := make([]float64, dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			rhs[i] += A[i*dim+j] * xTrue[j]
		}
	}
	x, err := h.Solve(dim, A, rhs)
	if err != nil {
		log.Fatal(err)
	}
	var maxErr float64
	for i := range x {
		if e := math.Abs(x[i] - xTrue[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("DnDgetrf/DnDgetrs %dx%d: max |x - x_true| = %.2e\n", dim, dim, maxErr)

	st := vg.Stats()
	fmt.Printf("\nall of it over RPC from %s: %d calls, %d launches, sim time %v\n",
		vg.Platform().Name, st.APICalls, st.KernelLaunches, vg.Now())
}
