// MatrixMul example: runs the matrixMul proxy application (Fig 5a) on
// every platform of Table 1 and prints the execution-time comparison,
// reproducing the paper's finding that unikernels need more than
// double the native time while beating the Linux VM.
//
//	go run ./examples/matrixmul [-iters 500]
package main

import (
	"flag"
	"fmt"
	"log"

	"cricket/internal/apps"
	"cricket/internal/core"
	"cricket/internal/guest"
)

func main() {
	iters := flag.Int("iters", 500, "timed kernel-launch iterations")
	flag.Parse()

	fmt.Printf("matrixMul, 64x32 * 32x64, %d iterations, per platform:\n\n", *iters)
	var native float64
	for _, p := range guest.All() {
		cluster := core.NewCluster()
		vg, err := cluster.Connect(p)
		if err != nil {
			log.Fatal(err)
		}
		res, err := apps.MatrixMul{HA: 64, WA: 32, WB: 64, Iterations: *iters}.Run(vg)
		vg.Close()
		cluster.Close()
		if err != nil {
			log.Fatalf("%s: %v", p.Name, err)
		}
		if !res.Verified {
			log.Fatalf("%s: wrong results", p.Name)
		}
		if p.Name == "Rust" {
			native = res.Total().Seconds()
		}
		rel := ""
		if native > 0 {
			rel = fmt.Sprintf(" (%.2fx native Rust)", res.Total().Seconds()/native)
		}
		fmt.Printf("  %-9s %10.3f ms%s\n", p.Name, res.Total().Seconds()*1e3, rel)
	}
}
