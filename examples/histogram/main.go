// Histogram example: the language comparison of Fig 5c. Runs the
// histogram proxy application with the C profile (slow rand(), extra
// kernel-launch logic) and the Rust profile, showing the Rust port's
// advantage and how much of it comes from initialization.
//
//	go run ./examples/histogram
package main

import (
	"fmt"
	"log"

	"cricket/internal/apps"
	"cricket/internal/core"
	"cricket/internal/guest"
)

func run(p guest.Platform) apps.Result {
	cluster := core.NewCluster()
	defer cluster.Close()
	vg, err := cluster.Connect(p)
	if err != nil {
		log.Fatal(err)
	}
	defer vg.Close()
	res, err := apps.Histogram{DataBytes: 16 << 20, ChunkBytes: 512 << 10, Passes: 50}.Run(vg)
	if err != nil {
		log.Fatalf("%s: %v", p.Name, err)
	}
	if !res.Verified {
		log.Fatalf("%s: histogram mismatch", p.Name)
	}
	return res
}

func main() {
	fmt.Println("histogram, 16 MiB data, 50 passes (256-bin, chunked kernels):")
	c := run(guest.NativeC())
	rust := run(guest.NativeRust())
	fmt.Printf("  C:    total %8.1f ms (init %7.1f ms, exec %8.1f ms)\n",
		ms(c.Total()), ms(c.InitTime), ms(c.ExecTime))
	fmt.Printf("  Rust: total %8.1f ms (init %7.1f ms, exec %8.1f ms)\n",
		ms(rust.Total()), ms(rust.InitTime), ms(rust.ExecTime))
	fmt.Printf("\nRust is %.1f%% faster overall", 100*(1-rust.Total().Seconds()/c.Total().Seconds()))
	fmt.Printf(" and %.1f%% faster excluding initialization.\n",
		100*(1-rust.ExecTime.Seconds()/c.ExecTime.Seconds()))
	fmt.Println("(Paper §4.1: ≈37.6% overall; the C sample's rand() dominates the gap.)")
}

func ms(d interface{ Seconds() float64 }) float64 { return d.Seconds() * 1e3 }
