GO ?= go

.PHONY: build test race vet ci bench generate

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# ci is the gate: everything builds, vets clean, and the full test
# suite passes under the race detector.
ci: build vet race

bench:
	$(GO) run ./cmd/benchharness -all -ci

generate:
	$(GO) run ./cmd/rpcgen -pkg cricket -o internal/cricket/gen_cricket.go internal/cricket/cricket.x
	$(GO) run ./cmd/rpcgen -pkg rpcltest -o internal/rpcltest/gen_mini.go internal/rpcltest/mini.x
