GO ?= go

.PHONY: build test race vet ci bench generate

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# ci is the gate: everything builds, vets clean, the full test suite
# passes under the race detector (with a doubled run over the tuning
# controllers and the datapath they govern, to shake out ordering
# flakes), the batching smoke criterion (Hermit batch>=32 at least 2x
# unbatched launch rate) holds, a seeded churn storm against a
# governed server upholds the resource invariants (no leaked device
# bytes, no scheduler ghosts, surviving digests bit-identical), a
# fleet storm that kills 1 of 3 members mid-workload loses no
# session, keeps digests bit-identical to a single-server run, and
# stays under 5% routed-vs-direct overhead, the transport ablation
# proves all four transfer methods bit-preserving with the zero-copy
# paths beating parallel sockets and the shm bulk path
# allocation-free, and the self-tuning ablation shows the adaptive
# window+admission matching the best static config's throughput with
# a tighter tail under shifting open-loop load. The migration smoke
# live-migrates a session off the busiest of 3 members mid-workload
# (zero lost sessions, digests identical, cutover delta <=50% of a
# full checkpoint, pause under the gate) and aborts cleanly back to
# the source when the target dies mid-copy; the extra race leg doubles
# down on the migration paths in fleet and cricket. The elastic smoke
# drives the dynamic-membership control plane through a seeded chaos
# plan — runtime join, heartbeat-partition TTL eviction and heal,
# graceful retire, scale-to-zero park, and a coalesced wake-on-attach
# storm — gating zero lost sessions, bit-identical digests, exactly
# one cold start per wake storm, and cold attach dearer than warm.
# The datacenter smoke plays a seeded diurnal inference trace against
# an elastic serving fleet — park at the trough, wake-on-attach at the
# ramp, batch-class shed at the peak — gating zero lost requests,
# token digests bit-identical to a static single-server run, at least
# one park and one cold start, a bounded shed rate with the latency
# class shed no more than batch, and the latency-class p99 TTFT inside
# its budget; the serve race leg doubles down on the scheduler that
# run exercises.
ci: build vet race
	$(GO) test -race -count=2 ./internal/tune ./internal/cricket
	$(GO) test -race ./internal/fleet ./internal/cricket
	$(GO) test -race ./internal/serve
	$(GO) run ./cmd/benchharness -ablation-batch -smoke
	$(GO) run ./cmd/benchharness -churn-smoke -ci
	$(GO) run ./cmd/benchharness -fleet-smoke -ci
	$(GO) run ./cmd/benchharness -migrate-smoke -ci
	$(GO) run ./cmd/benchharness -elastic-smoke -ci
	$(GO) run ./cmd/benchharness -transport-smoke -ci
	$(GO) run ./cmd/benchharness -adaptive-smoke -ci
	$(GO) run ./cmd/benchharness -datacenter-smoke -ci

bench:
	$(GO) run ./cmd/benchharness -all -ci
	$(GO) run ./cmd/benchharness -ablation-batch -ci -batch-json BENCH_batch.json
	$(GO) run ./cmd/benchharness -fleet-smoke -ci -fleet-json BENCH_fleet.json
	$(GO) run ./cmd/benchharness -migrate-smoke -ci -migrate-json BENCH_migrate.json
	$(GO) run ./cmd/benchharness -elastic-smoke -ci -elastic-json BENCH_elastic.json
	$(GO) run ./cmd/benchharness -transport-smoke -ci -transport-json BENCH_transport.json
	$(GO) run ./cmd/benchharness -adaptive-smoke -adaptive-json BENCH_adaptive.json
	$(GO) run ./cmd/benchharness -datacenter-smoke -datacenter-json BENCH_datacenter.json

generate:
	$(GO) run ./cmd/rpcgen -pkg cricket -o internal/cricket/gen_cricket.go internal/cricket/cricket.x
	$(GO) run ./cmd/rpcgen -pkg rpcltest -o internal/rpcltest/gen_mini.go internal/rpcltest/mini.x
	$(GO) run ./cmd/rpcgen -pkg fleet -o internal/fleet/gen_registry.go internal/fleet/registry.x
