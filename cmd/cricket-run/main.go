// Command cricket-run executes one of the proxy applications against
// a Cricket server: either a remote server over TCP (started with
// cricket-server) or an in-process simulated cluster with a selected
// guest platform.
//
// Usage:
//
//	cricket-run -app matrixmul                      # in-proc, native Rust profile
//	cricket-run -app histogram -platform Hermit     # in-proc, RustyHermit profile
//	cricket-run -app solver -server 127.0.0.1:9999  # against a real server
//	cricket-run -app bandwidth -direction d2h
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"cricket/internal/apps"
	"cricket/internal/core"
	"cricket/internal/cricket"
	"cricket/internal/guest"
)

func main() {
	app := flag.String("app", "matrixmul", "application: matrixmul, histogram, solver, bandwidth")
	platform := flag.String("platform", "Rust", "guest platform: C, Rust, 'Linux VM', Unikraft, Hermit")
	server := flag.String("server", "", "remote Cricket server address (empty: in-process simulation)")
	iters := flag.Int("iters", 0, "iteration/pass count (0: small demo default)")
	direction := flag.String("direction", "h2d", "bandwidth direction: h2d or d2h")
	full := flag.Bool("paper-scale", false, "run the full paper-scale workload (timing replay)")
	flag.Parse()

	p, ok := guest.ByName(*platform)
	if !ok {
		fmt.Fprintf(os.Stderr, "cricket-run: unknown platform %q\n", *platform)
		os.Exit(2)
	}

	if *server != "" {
		runRemote(*server, p, *app)
		return
	}

	cl := core.NewCluster()
	defer cl.Close()
	vg, err := cl.Connect(p)
	if err != nil {
		fatal(err)
	}
	defer vg.Close()

	switch *app {
	case "matrixmul":
		cfg := apps.MatrixMul{HA: 64, WA: 32, WB: 64, Iterations: or(*iters, 100)}
		if *full {
			cfg = apps.MatrixMul{TimingReplay: true}
		}
		report(cfg.Run(vg))
	case "histogram":
		cfg := apps.Histogram{DataBytes: 4 << 20, ChunkBytes: 256 << 10, Passes: or(*iters, 10)}
		if *full {
			cfg = apps.Histogram{TimingReplay: true}
		}
		report(cfg.Run(vg))
	case "solver":
		cfg := apps.LinearSolver{N: 64, Iterations: or(*iters, 5)}
		if *full {
			cfg = apps.LinearSolver{TimingReplay: true}
		}
		report(cfg.Run(vg))
	case "bandwidth":
		dir := apps.HostToDevice
		if *direction == "d2h" {
			dir = apps.DeviceToHost
		}
		cfg := apps.BandwidthTest{Bytes: 32 << 20, Runs: or(*iters, 3), Direction: dir}
		if *full {
			cfg = apps.BandwidthTest{Direction: dir}
		}
		res, err := cfg.Run(vg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
	default:
		fmt.Fprintf(os.Stderr, "cricket-run: unknown app %q\n", *app)
		os.Exit(2)
	}
}

func or(v, def int) int {
	if v != 0 {
		return v
	}
	return def
}

func report(res apps.Result, err error) {
	if err != nil {
		fatal(err)
	}
	fmt.Println(res)
	if !res.Verified {
		fmt.Fprintln(os.Stderr, "cricket-run: WARNING: result verification failed")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cricket-run:", err)
	os.Exit(1)
}

// runRemote issues a smoke workload against a real TCP server: device
// discovery plus a memory round trip. Applications measure themselves
// over real networks, so no simulated platform costs apply.
func runRemote(addr string, p guest.Platform, app string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		fatal(err)
	}
	c, err := cricket.Connect(conn, cricket.Options{Platform: p})
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	n, err := c.GetDeviceCount()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("connected to %s: %d device(s)\n", addr, n)
	for i := 0; i < n; i++ {
		prop, err := c.GetDeviceProperties(i)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  device %d: %s (sm_%d%d, %d SMs)\n", i, prop.Name, prop.Major, prop.Minor, prop.MultiProcessorCount)
	}
	ptr, err := c.Malloc(1 << 20)
	if err != nil {
		fatal(err)
	}
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i)
	}
	if err := c.MemcpyHtoD(ptr, data); err != nil {
		fatal(err)
	}
	back, err := c.MemcpyDtoH(ptr, 1<<20)
	if err != nil {
		fatal(err)
	}
	ok := len(back) == len(data)
	for i := range back {
		if back[i] != data[i] {
			ok = false
			break
		}
	}
	if err := c.Free(ptr); err != nil {
		fatal(err)
	}
	fmt.Printf("memory round trip (1 MiB): ok=%v\n", ok)
	_ = app
}
