// Command cricket-run executes one of the proxy applications against
// a Cricket server: either a remote server over TCP (started with
// cricket-server) or an in-process simulated cluster with a selected
// guest platform.
//
// Usage:
//
//	cricket-run -app matrixmul                      # in-proc, native Rust profile
//	cricket-run -app histogram -platform Hermit     # in-proc, RustyHermit profile
//	cricket-run -app solver -server 127.0.0.1:9999  # against a real server
//	cricket-run -app bandwidth -direction d2h
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net"
	"os"
	"time"

	"cricket/internal/apps"
	"cricket/internal/core"
	"cricket/internal/cricket"
	"cricket/internal/cubin"
	"cricket/internal/cuda"
	"cricket/internal/gpu"
	"cricket/internal/guest"
	"cricket/internal/obs"
	"cricket/internal/oncrpc"
	"cricket/internal/serve"
	"cricket/internal/tune"
)

func main() {
	app := flag.String("app", "matrixmul", "application: matrixmul, histogram, solver, bandwidth, decode")
	platform := flag.String("platform", "Rust", "guest platform: C, Rust, 'Linux VM', Unikraft, Hermit")
	server := flag.String("server", "", "remote Cricket server address (empty: in-process simulation)")
	iters := flag.Int("iters", 0, "iteration/pass count (0: small demo default)")
	direction := flag.String("direction", "h2d", "bandwidth direction: h2d or d2h")
	full := flag.Bool("paper-scale", false, "run the full paper-scale workload (timing replay)")
	transfer := flag.String("transfer", "rpc-args", "bulk-transfer method: rpc-args (inline), parallel-sockets (sockets), shared-memory (shm), rdma")
	sockets := flag.Int("sockets", 4, "with -transfer parallel-sockets: data-connection count")
	dataServer := flag.String("data-server", "", "with -server and -transfer parallel-sockets: the server's data-channel address (cricket-server -data-listen); empty moves bytes inline")
	requireTransfer := flag.Bool("require-transfer", false, "fail instead of degrading to rpc-args when the server refuses -transfer")
	session := flag.Bool("session", false, "with -server: use a fault-tolerant session (reconnect + replay)")
	migrateTo := flag.String("migrate-to", "", "with -session: live-migrate the session to this server address mid-workload and print the migration report")
	pauseMs := flag.Int("pause-ms", 0, "with -session: pause after checkpoint, before the launch (a window to kill/restart the server)")
	window := flag.Int("window", 0, "with -session: in-flight call window (0: uncapped; with -adaptive-window: the upper bound)")
	adaptiveWindow := flag.Bool("adaptive-window", false, "with -session: walk the in-flight window to the knee of the latency curve instead of pinning it")
	traceOut := flag.String("trace", "", "write a JSON call trace (spans + per-procedure latency metrics) to this file at exit")
	serveMode := flag.Bool("serve", false, "run the in-process LLM-serving demo (continuous batching + token streaming) instead of a proxy app")
	serveRequests := flag.Int("serve-requests", 6, "with -serve: concurrent generation requests")
	serveTokens := flag.Int("serve-tokens", 24, "with -serve: tokens generated per request")
	serveReplicas := flag.Int("serve-replicas", 2, "with -serve: data-parallel replicas, one simulated GPU each")
	flag.Parse()

	p, ok := guest.ByName(*platform)
	if !ok {
		fmt.Fprintf(os.Stderr, "cricket-run: unknown platform %q\n", *platform)
		os.Exit(2)
	}
	method, ok := cricket.TransferMethodByName(*transfer)
	if !ok {
		fmt.Fprintf(os.Stderr, "cricket-run: unknown transfer method %q\n", *transfer)
		os.Exit(2)
	}

	if *serveMode {
		runServe(p, *serveReplicas, *serveRequests, *serveTokens)
		return
	}

	var col *obs.Collector
	if *traceOut != "" {
		col = cricket.NewCollector(0)
	}

	opts := cricket.Options{
		Obs:             col,
		Transfer:        method,
		Sockets:         *sockets,
		RequireTransfer: *requireTransfer,
	}
	if *dataServer != "" {
		addr := *dataServer
		opts.DataDial = func() (io.ReadWriteCloser, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}

	if *server != "" {
		opts.Platform = p
		if *session {
			runSession(*server, opts, *pauseMs, *migrateTo, sessionWindow(*window, *adaptiveWindow))
		} else {
			runRemote(*server, opts, *app)
		}
		dumpTrace(col, *traceOut)
		return
	}

	cl := core.NewCluster()
	defer cl.Close()
	if col != nil {
		// In-process runs own both ends, so client and server spans
		// land in the same collector and join by call id.
		cl.Cricket.SetObserver(col)
	}
	vg, err := cl.ConnectOpts(p, opts)
	if err != nil {
		fatal(err)
	}
	defer vg.Close()
	defer dumpTrace(col, *traceOut)
	if eff := vg.Raw().Transfer(); eff != method {
		fmt.Fprintf(os.Stderr, "cricket-run: note: server degraded transfer from %s to %s\n", method, eff)
	}

	switch *app {
	case "matrixmul":
		cfg := apps.MatrixMul{HA: 64, WA: 32, WB: 64, Iterations: or(*iters, 100)}
		if *full {
			cfg = apps.MatrixMul{TimingReplay: true}
		}
		report(cfg.Run(vg))
	case "histogram":
		cfg := apps.Histogram{DataBytes: 4 << 20, ChunkBytes: 256 << 10, Passes: or(*iters, 10)}
		if *full {
			cfg = apps.Histogram{TimingReplay: true}
		}
		report(cfg.Run(vg))
	case "solver":
		cfg := apps.LinearSolver{N: 64, Iterations: or(*iters, 5)}
		if *full {
			cfg = apps.LinearSolver{TimingReplay: true}
		}
		report(cfg.Run(vg))
	case "decode":
		cfg := apps.DecodeService{Prompts: 2, TokensPer: or(*iters, 48), PromptLen: 256, KVBytes: 1024, WeightWords: 1024}
		if *full {
			cfg = apps.DecodeService{}
		}
		report(cfg.Run(vg))
	case "bandwidth":
		dir := apps.HostToDevice
		if *direction == "d2h" {
			dir = apps.DeviceToHost
		}
		cfg := apps.BandwidthTest{Bytes: 32 << 20, Runs: or(*iters, 3), Direction: dir}
		if *full {
			cfg = apps.BandwidthTest{Direction: dir}
		}
		res, err := cfg.Run(vg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
	default:
		fmt.Fprintf(os.Stderr, "cricket-run: unknown app %q\n", *app)
		os.Exit(2)
	}
}

func or(v, def int) int {
	if v != 0 {
		return v
	}
	return def
}

func report(res apps.Result, err error) {
	if err != nil {
		fatal(err)
	}
	fmt.Println(res)
	if !res.Verified {
		fmt.Fprintln(os.Stderr, "cricket-run: WARNING: result verification failed")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cricket-run:", err)
	os.Exit(1)
}

// dumpTrace writes the collected spans and per-procedure latency
// metrics as one JSON document. No-op without a collector.
func dumpTrace(col *obs.Collector, path string) {
	if col == nil || path == "" {
		return
	}
	out := struct {
		Metrics obs.Metrics `json:"metrics"`
		Spans   []obs.Span  `json:"spans"`
	}{col.Metrics(), col.Spans()}
	data, err := json.MarshalIndent(out, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cricket-run: write trace:", err)
		return
	}
	fmt.Printf("trace written to %s (%d spans)\n", path, len(out.Spans))
}

// runRemote issues a smoke workload against a real TCP server: device
// discovery plus a memory round trip. Applications measure themselves
// over real networks, so no simulated platform costs apply.
func runRemote(addr string, opts cricket.Options, app string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		fatal(err)
	}
	c, err := cricket.Connect(conn, opts)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	n, err := c.GetDeviceCount()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("connected to %s: %d device(s), transfer method %s\n", addr, n, c.Transfer())
	for i := 0; i < n; i++ {
		prop, err := c.GetDeviceProperties(i)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  device %d: %s (sm_%d%d, %d SMs)\n", i, prop.Name, prop.Major, prop.Minor, prop.MultiProcessorCount)
	}
	ptr, err := c.Malloc(1 << 20)
	if err != nil {
		fatal(err)
	}
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i)
	}
	if err := c.MemcpyHtoD(ptr, data); err != nil {
		fatal(err)
	}
	back, err := c.MemcpyDtoH(ptr, 1<<20)
	if err != nil {
		fatal(err)
	}
	ok := len(back) == len(data)
	for i := range back {
		if back[i] != data[i] {
			ok = false
			break
		}
	}
	if err := c.Free(ptr); err != nil {
		fatal(err)
	}
	fmt.Printf("memory round trip (1 MiB): ok=%v\n", ok)
	_ = app
}

// runSession drives a matrixMul workload through a fault-tolerant
// session: the server may be killed and restarted while this runs (use
// -pause-ms to open a window between the checkpoint and the launch)
// and the workload still completes, bit-identical. With -migrate-to
// the session live-migrates to a second server between the upload and
// the launch, so the kernel runs — and the result reads back — on the
// migration target. The result checksum and the session's recovery
// counters are printed so a harness can compare a faulted or migrated
// run against a plain one.
func runSession(addr string, opts cricket.Options, pauseMs int, migrateTo string, win *tune.Window) {
	s, err := cricket.NewSession(cricket.SessionOptions{
		Options: opts,
		Window:  win,
		Redial: func() (io.ReadWriteCloser, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		},
	})
	if err != nil {
		fatal(err)
	}
	defer s.Close()

	const dim = 32 // one 32x32 matrixMul tile
	var fb cubin.FatBinary
	fb.AddImage(cuda.BuiltinImage(80), true)
	mod, err := s.ModuleLoad(fb.Encode())
	if err != nil {
		fatal(err)
	}
	f, err := s.ModuleGetFunction(mod, cuda.KernelMatrixMul)
	if err != nil {
		fatal(err)
	}
	size := uint64(dim * dim * 4)
	dA, err := s.Malloc(size)
	if err != nil {
		fatal(err)
	}
	dB, err := s.Malloc(size)
	if err != nil {
		fatal(err)
	}
	dC, err := s.Malloc(size)
	if err != nil {
		fatal(err)
	}
	host := make([]byte, size)
	for i := 0; i < dim*dim; i++ {
		binary.LittleEndian.PutUint32(host[i*4:], math.Float32bits(float32(i%7)+0.5))
	}
	if err := s.MemcpyHtoD(dA, host); err != nil {
		fatal(err)
	}
	if err := s.MemcpyHtoD(dB, host); err != nil {
		fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		fatal(err)
	}
	if pauseMs > 0 {
		fmt.Printf("checkpointed; pausing %dms (kill the server now)\n", pauseMs)
		time.Sleep(time.Duration(pauseMs) * time.Millisecond)
	}
	if migrateTo != "" {
		target := migrateTo
		rep, err := s.MigrateVia(target, func() (io.ReadWriteCloser, error) {
			return net.DialTimeout("tcp", target, 5*time.Second)
		})
		if err != nil {
			fatal(fmt.Errorf("migrate to %s: %w", target, err))
		}
		fmt.Printf("migrated to %s: rounds=%d full=%dB precopy=%dB delta=%dB pause=%s\n",
			rep.Target, rep.Rounds, rep.FullBytes, rep.PrecopyBytes, rep.DeltaBytes,
			rep.Pause.Round(10*time.Microsecond))
	}
	args := cuda.NewArgBuffer().Ptr(dC).Ptr(dA).Ptr(dB).I32(dim).I32(dim).Bytes()
	if err := s.LaunchKernel(f, gpu.Dim3{X: 1, Y: 1, Z: 1}, gpu.Dim3{X: 32, Y: 32, Z: 1}, 0, 0, args); err != nil {
		fatal(err)
	}
	if err := s.DeviceSynchronize(); err != nil {
		fatal(err)
	}
	out, err := s.MemcpyDtoH(dC, size)
	if err != nil {
		fatal(err)
	}
	sum := fnv.New64a()
	sum.Write(out)
	st := s.SessionStats()
	fmt.Printf("matrixmul result checksum: %016x\n", sum.Sum64())
	fmt.Printf("session stats: reconnects=%d replays=%d restores=%d migrations=%d dials=%d recovery=%s\n",
		st.Reconnects, st.Replays, st.Restores, st.Migrations, st.DialAttempts, st.RecoveryTime.Round(time.Millisecond))
	if win != nil {
		ws := win.Stats()
		fmt.Printf("window stats: window=%d grows=%d shrinks=%d backoffs=%d samples=%d\n",
			ws.Window, ws.Grows, ws.Shrinks, ws.Backoffs, ws.Samples)
	}
}

// sessionWindow builds the session's in-flight gate from the -window
// and -adaptive-window flags: nil (uncapped), a pinned window, or the
// adaptive controller bounded by -window.
func sessionWindow(n int, adaptive bool) *tune.Window {
	switch {
	case adaptive:
		if n <= 0 {
			n = 64
		}
		return tune.NewWindow(tune.WindowConfig{Max: n})
	case n > 0:
		return tune.Static(n)
	}
	return nil
}

// runServe is the in-process serving demo: a multi-GPU simulated
// server, one fault-tolerant session, and a serve.Engine doing
// continuous batching across data-parallel replicas. Tokens stream to
// stdout as they commit; the per-class latency report prints at the
// end.
func runServe(p guest.Platform, replicas, requests, tokens int) {
	if replicas <= 0 {
		replicas = 1
	}
	devs := make([]*gpu.Device, replicas)
	for i := range devs {
		devs[i] = gpu.New(gpu.SpecA100)
	}
	rpcSrv := oncrpc.NewServer()
	cricket.NewServer(cuda.NewRuntime(nil, devs...)).Attach(rpcSrv)
	s, err := cricket.NewSession(cricket.SessionOptions{
		Options: cricket.Options{Platform: p, Batch: 16},
		Redial: func() (io.ReadWriteCloser, error) {
			cli, srv := net.Pipe()
			go rpcSrv.ServeConn(srv)
			return cli, nil
		},
		Seed: 1,
	})
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	eng, err := serve.New(s, serve.Config{Replicas: replicas})
	if err != nil {
		fatal(err)
	}
	defer eng.Close()

	tickets := make([]*serve.Ticket, requests)
	for i := 0; i < requests; i++ {
		prompt := []byte(fmt.Sprintf("request %d: tell me about unikernel GPU serving", i))
		class := serve.Latency
		if i%2 == 1 {
			class = serve.Batch
		}
		tickets[i], err = eng.Submit(serve.Request{
			ID: uint64(i), Prompt: prompt, MaxTokens: tokens, Class: class,
		})
		if err != nil {
			fatal(err)
		}
	}
	for i, tk := range tickets {
		resp, err := tk.Wait()
		if err != nil {
			fatal(err)
		}
		n := len(resp.Tokens)
		if n > 4 {
			n = 4
		}
		fmt.Printf("request %d (replica %d): %d tokens %v... digest=%016x ttft=%s total=%s\n",
			i, resp.Replica, len(resp.Tokens), resp.Tokens[:n], resp.Digest,
			resp.TTFT.Round(time.Microsecond), resp.Total.Round(time.Microsecond))
	}
	st := eng.Stats()
	fmt.Printf("engine: rounds=%d launches=%d completed=%d\n", st.Rounds, st.Launches, st.Completed)
	for _, cr := range eng.Report() {
		fmt.Printf("%s class: p99 ttft=%s p99 per-token=%s\n",
			cr.Class, cr.TTFTp99.Round(time.Microsecond), cr.PerTokP99.Round(time.Microsecond))
	}
}
