// Command rpcgen generates Go code from an RPCL interface
// specification (.x file): XDR marshaling for every declared type,
// typed RPC clients, and server handler interfaces with dispatch
// adapters.
//
// It plays the role that Sun's rpcgen plays for the Cricket C server
// and that RPC-Lib's procedural macros play for Rust clients.
//
// Usage:
//
//	rpcgen -pkg cricket -o gen_cricket.go cricket.x
package main

import (
	"flag"
	"fmt"
	"os"

	"cricket/internal/rpcl"
)

func main() {
	pkg := flag.String("pkg", "rpcgen", "package name of the generated file")
	out := flag.String("o", "", "output file (default stdout)")
	xdrImport := flag.String("xdr", "cricket/internal/xdr", "import path of the XDR runtime")
	rpcImport := flag.String("rpc", "cricket/internal/oncrpc", "import path of the ONC RPC runtime")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rpcgen [-pkg name] [-o file] spec.x\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpcgen: %v\n", err)
		os.Exit(1)
	}
	spec, err := rpcl.Parse(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpcgen: %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	code, err := rpcl.Generate(spec, rpcl.GenOptions{
		Package:   *pkg,
		XDRImport: *xdrImport,
		RPCImport: *rpcImport,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpcgen: generate: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(code)
		return
	}
	if err := os.WriteFile(*out, code, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "rpcgen: %v\n", err)
		os.Exit(1)
	}
}
