// Command benchharness regenerates every table and figure of the
// paper's evaluation section and prints them as text tables. See
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
//
// Usage:
//
//	benchharness -all                 # everything at paper scale
//	benchharness -fig6a -fig7         # selected experiments
//	benchharness -all -ci             # reduced scale, full execution
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"cricket/internal/apps"
	"cricket/internal/bench"
	"cricket/internal/guest"
	"cricket/internal/obs"
)

func main() {
	all := flag.Bool("all", false, "run every experiment")
	ci := flag.Bool("ci", false, "reduced workload scale")
	table1 := flag.Bool("table1", false, "Table 1: configurations")
	fig5a := flag.Bool("fig5a", false, "Fig 5a: matrixMul")
	fig5b := flag.Bool("fig5b", false, "Fig 5b: cuSolverDn_LinearSolver")
	fig5c := flag.Bool("fig5c", false, "Fig 5c: histogram")
	fig6a := flag.Bool("fig6a", false, "Fig 6a: cudaGetDeviceCount x100k")
	fig6b := flag.Bool("fig6b", false, "Fig 6b: cudaMalloc/cudaFree x100k")
	fig6c := flag.Bool("fig6c", false, "Fig 6c: kernel launch x100k")
	fig7 := flag.Bool("fig7", false, "Fig 7: bandwidthTest both directions")
	ablOffload := flag.Bool("ablation-offload", false, "§4.2 offload ablation")
	ablTransfer := flag.Bool("ablation-transfer", false, "transfer-method ablation")
	ablCubin := flag.Bool("ablation-cubin", false, "cubin compression ablation")
	ablMTU := flag.Bool("ablation-mtu", false, "MTU ablation")
	ablFuture := flag.Bool("ablation-future", false, "§5 future-work projection (Hermit TSO, vDPA)")
	recovery := flag.Bool("recovery", false, "session recovery latency vs replayed state")
	churnSmoke := flag.Bool("churn-smoke", false, "seeded churn/soak storm against a governed server; exit 1 on any invariant violation")
	churnSeed := flag.Int64("churn-seed", 1, "with -churn-smoke: master seed for the churn plan")
	fleetSmoke := flag.Bool("fleet-smoke", false, "fleet chaos storm: kill 1 of 3 members mid-workload; exit 1 on lost sessions, digest drift, or >=5% routed overhead")
	fleetSeed := flag.Int64("fleet-seed", 1, "with -fleet-smoke: master seed for the storm")
	fleetJSON := flag.String("fleet-json", "", "with -fleet-smoke: also write the FleetResult as JSON to this file")
	elasticSmoke := flag.Bool("elastic-smoke", false, "elastic membership storm: runtime join, TTL eviction + heal, graceful retire, scale-to-zero park and coalesced wake-on-attach; exit 1 on lost sessions, digest drift, or a missed transition")
	elasticSeed := flag.Int64("elastic-seed", 1, "with -elastic-smoke: master seed for the membership plan")
	elasticJSON := flag.String("elastic-json", "", "with -elastic-smoke: also write the ElasticResult as JSON to this file")
	migrateSmoke := flag.Bool("migrate-smoke", false, "live-migration storm: rebalance off the busiest of 3 members mid-workload plus a mid-copy target-kill abort; exit 1 on lost sessions, digest drift, oversized delta, or unbounded pause")
	migrateSeed := flag.Int64("migrate-seed", 1, "with -migrate-smoke: master seed for the storm")
	migrateJSON := flag.String("migrate-json", "", "with -migrate-smoke: also write the MigrateResult as JSON to this file")
	transportSmoke := flag.Bool("transport-smoke", false, "transport ablation: all four transfer methods; exit 1 on digest drift, zero-copy paths not beating sockets, or shm allocations")
	transportJSON := flag.String("transport-json", "", "with -transport-smoke: also write the TransportResult as JSON to this file")
	adaptiveSmoke := flag.Bool("adaptive-smoke", false, "self-tuning ablation: adaptive window+admission vs static configs under shifting open-loop load; exit 1 if adaptive loses on throughput or tail")
	adaptiveJSON := flag.String("adaptive-json", "", "with -adaptive-smoke: also write the AdaptiveResult as JSON to this file")
	ablBatch := flag.Bool("ablation-batch", false, "BATCH_EXEC ablation: kernel-launch rate by batch size")
	smoke := flag.Bool("smoke", false, "with -ablation-batch: tiny sweep, assert Hermit batch>=32 beats unbatched 2x")
	batchJSON := flag.String("batch-json", "", "with -ablation-batch: also write points as JSON to this file")
	latencyJSON := flag.String("latency-json", "", "run the observability latency profile and write per-procedure p50/p99 as JSON to this file")
	dcSmoke := flag.Bool("datacenter-smoke", false, "datacenter day: seeded diurnal inference trace against an elastic fleet (park at the trough, wake at the ramp, shed at the peak); exit 1 on lost requests, digest drift vs the static run, a missed park/wake, or a blown TTFT budget")
	dcUsers := flag.Int("datacenter-users", 1_000_000, "with -datacenter-smoke: simulated user population the trace is scaled from")
	dcSeed := flag.Int64("datacenter-seed", 1, "with -datacenter-smoke: master seed for the trace, the weights, and every fleet jitter stream")
	dcJSON := flag.String("datacenter-json", "", "with -datacenter-smoke: also write the DatacenterResult as JSON to this file")
	flag.Parse()

	scale := bench.ScalePaper
	calls := 100_000
	bwBytes := 512 << 20
	bwRuns := 10
	if *ci {
		scale = bench.ScaleCI
		calls = 2_000
		bwBytes = 32 << 20
		bwRuns = 2
	}

	ran := false
	section := func(enabled bool, f func()) {
		if *all || enabled {
			f()
			ran = true
		}
	}

	section(*table1, func() {
		fmt.Println("Table 1: Overview of configurations for the evaluation")
		fmt.Println(bench.Table1())
	})
	runRows := func(title, unit string, f func() ([]bench.Row, error)) {
		start := time.Now()
		rows, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: %s: %v\n", title, err)
			os.Exit(1)
		}
		fmt.Print(bench.Render(title, unit, rows))
		fmt.Printf("  [generated in %v wall time]\n\n", time.Since(start).Round(time.Millisecond))
	}

	section(*fig5a, func() {
		runRows("Fig 5a: matrixMul execution time (simulated s)", "s",
			func() ([]bench.Row, error) { return bench.Fig5a(scale) })
	})
	section(*fig5b, func() {
		runRows("Fig 5b: cuSolverDn_LinearSolver execution time (simulated s)", "s",
			func() ([]bench.Row, error) { return bench.Fig5b(scale) })
	})
	section(*fig5c, func() {
		runRows("Fig 5c: histogram execution time (simulated s)", "s",
			func() ([]bench.Row, error) { return bench.Fig5c(scale) })
	})
	section(*fig6a, func() {
		runRows(fmt.Sprintf("Fig 6a: %d x cudaGetDeviceCount (simulated s)", calls), "s",
			func() ([]bench.Row, error) { return bench.Fig6(bench.MicroGetDeviceCount, calls) })
	})
	section(*fig6b, func() {
		runRows(fmt.Sprintf("Fig 6b: %d x cudaMalloc/cudaFree (simulated s)", calls), "s",
			func() ([]bench.Row, error) { return bench.Fig6(bench.MicroMallocFree, calls) })
	})
	section(*fig6c, func() {
		runRows(fmt.Sprintf("Fig 6c: %d x kernel launch (simulated s)", calls), "s",
			func() ([]bench.Row, error) { return bench.Fig6(bench.MicroKernelLaunch, calls) })
	})
	section(*fig7, func() {
		runRows(fmt.Sprintf("Fig 7a: bandwidthTest device-to-host, %d MiB", bwBytes>>20), "MiB/s",
			func() ([]bench.Row, error) { return bench.Fig7(apps.DeviceToHost, bwBytes, bwRuns) })
		runRows(fmt.Sprintf("Fig 7b: bandwidthTest host-to-device, %d MiB", bwBytes>>20), "MiB/s",
			func() ([]bench.Row, error) { return bench.Fig7(apps.HostToDevice, bwBytes, bwRuns) })
	})
	section(*ablOffload, func() {
		runRows("Ablation (§4.2): Linux VM with TX offloads disabled", "MiB/s",
			func() ([]bench.Row, error) { return bench.AblationOffloads(bwBytes, bwRuns) })
	})
	section(*ablTransfer, func() {
		runRows("Ablation: Cricket memory-transfer methods (native C client)", "MiB/s",
			func() ([]bench.Row, error) { return bench.AblationTransferMethods(bwBytes / 8) })
	})
	section(*ablCubin, func() {
		runRows("Ablation: cubin compression (module load, simulated µs)", "µs",
			bench.AblationCubinCompression)
	})
	section(*ablMTU, func() {
		runRows("Ablation: IP MTU 1500 vs 9000 (Hermit bulk H2D)", "MiB/s",
			bench.AblationMTU)
	})
	section(*ablFuture, func() {
		runRows("Ablation (§5 outlook): Hermit with TSO and vDPA, bulk H2D", "MiB/s",
			func() ([]bench.Row, error) { return bench.AblationFutureWork(bwBytes) })
	})
	section(*ablBatch, func() {
		batchCalls, sizes := calls, bench.DefaultBatchSizes
		if *smoke {
			batchCalls, sizes = 2_000, []int{0, 32}
		}
		start := time.Now()
		points, err := bench.AblationBatch(batchCalls, sizes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: ablation-batch: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.RenderBatch(points))
		fmt.Printf("  [generated in %v wall time]\n\n", time.Since(start).Round(time.Millisecond))
		if *batchJSON != "" {
			data, err := json.MarshalIndent(points, "", "  ")
			if err == nil {
				err = os.WriteFile(*batchJSON, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchharness: write %s: %v\n", *batchJSON, err)
				os.Exit(1)
			}
		}
		if *smoke {
			const want = 2.0
			got := bench.BatchSpeedup(points, "Hermit", 32)
			if got < want {
				fmt.Fprintf(os.Stderr, "benchharness: smoke: Hermit batch>=32 speedup %.2fx, want >=%.1fx\n", got, want)
				os.Exit(1)
			}
			fmt.Printf("smoke ok: Hermit batch>=32 launches %.2fx faster than unbatched\n", got)
		}
	})
	section(*latencyJSON != "", func() {
		if *latencyJSON == "" {
			return // -all without a file: nothing to write
		}
		latCalls := 10_000
		if *ci {
			latCalls = 1_000
		}
		p, _ := guest.ByName("Hermit")
		start := time.Now()
		metrics, err := bench.LatencyProfile(p, latCalls)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: latency profile: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("Latency profile (%s, %d calls/procedure, wall-clock µs)\n", p.Name, latCalls)
		printStats := func(side string, rows []obs.ProcStats) {
			for _, r := range rows {
				fmt.Printf("  %-6s %-26s n=%-7d p50=%8.2f p99=%8.2f max=%8.2f\n",
					side, r.Proc, r.Count, r.P50US, r.P99US, r.MaxUS)
			}
		}
		printStats("client", metrics.Client)
		printStats("server", metrics.Server)
		printStats("device", metrics.Device)
		fmt.Printf("  [generated in %v wall time]\n\n", time.Since(start).Round(time.Millisecond))
		data, err := json.MarshalIndent(metrics, "", "  ")
		if err == nil {
			err = os.WriteFile(*latencyJSON, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: write %s: %v\n", *latencyJSON, err)
			os.Exit(1)
		}
	})
	section(*recovery, func() {
		counts := []int{1, 16, 64, 256}
		runs := 5
		if *ci {
			counts = []int{1, 16}
			runs = 2
		}
		runRows("Session recovery after server restart (wall-clock ms)", "ms",
			func() ([]bench.Row, error) { return bench.Recovery(counts, runs) })
	})
	section(*churnSmoke, func() {
		sessions, churnCalls := 16, 200
		if *ci {
			sessions, churnCalls = 8, 64
		}
		start := time.Now()
		r, err := bench.Churn(sessions, churnCalls, *churnSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: churn-smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("Churn storm: %d sessions x %d launches, seed %d\n", r.Sessions, r.Calls, *churnSeed)
		fmt.Printf("  survivors=%d abandoned=%d failed=%d reconnects=%d replays=%d overloads=%d\n",
			r.Survivors, r.Abandoned, r.Failed, r.Reconnects, r.Replays, r.Overloads)
		fmt.Printf("  leases granted=%d expired=%d; reclaimed %d bytes, %d handles; %d calls shed\n",
			r.Server.LeasesGranted, r.Server.LeasesExpired, r.Server.ReclaimedBytes,
			r.Server.ReclaimedHandles, r.Server.CallsShed)
		fmt.Printf("  [generated in %v wall time]\n\n", time.Since(start).Round(time.Millisecond))
		if v := r.Violations(); len(v) != 0 {
			for _, msg := range v {
				fmt.Fprintf(os.Stderr, "benchharness: churn-smoke: VIOLATION: %s\n", msg)
			}
			os.Exit(1)
		}
		fmt.Println("churn-smoke ok: zero leaked bytes, zero scheduler ghosts, surviving digests bit-identical")
	})
	section(*transportSmoke, func() {
		xferBytes := 64 << 20
		if *ci {
			xferBytes = 8 << 20
		}
		start := time.Now()
		r, err := bench.Transport(xferBytes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: transport-smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("Transport ablation: %d MiB bulk transfers, native C client\n", r.Bytes>>20)
		for _, m := range r.Methods {
			allocs := "-"
			if m.AllocsPerOp >= 0 {
				allocs = fmt.Sprintf("%.1f allocs/op", m.AllocsPerOp)
			}
			fmt.Printf("  %-18s write %8.0f MiB/s  read %8.0f MiB/s  digests %016x/%016x/%016x  %s\n",
				m.Method, m.WriteMiBps, m.ReadMiBps, m.MatrixMul, m.Histogram, m.LinearSolver, allocs)
		}
		fmt.Printf("  [generated in %v wall time]\n\n", time.Since(start).Round(time.Millisecond))
		if *transportJSON != "" {
			data, err := json.MarshalIndent(r, "", "  ")
			if err == nil {
				err = os.WriteFile(*transportJSON, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchharness: write %s: %v\n", *transportJSON, err)
				os.Exit(1)
			}
		}
		if v := r.Violations(); len(v) != 0 {
			for _, msg := range v {
				fmt.Fprintf(os.Stderr, "benchharness: transport-smoke: VIOLATION: %s\n", msg)
			}
			os.Exit(1)
		}
		fmt.Println("transport-smoke ok: digests bit-identical across transports, zero-copy paths beat sockets, shm bulk path allocation-free")
	})
	section(*adaptiveSmoke, func() {
		acfg := bench.AdaptiveConfig{}
		if *ci {
			// Long enough for the controllers to settle out of their
			// initial guesses; the full default trace runs under make bench.
			acfg.Arrivals = 1200
		}
		start := time.Now()
		r, err := bench.Adaptive(acfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: adaptive-smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("Self-tuning ablation: %d arrivals/phase, %d exec slots x %v service\n",
			r.ArrivalsPerPhase, r.ExecSlots, r.Service)
		for _, ph := range r.Phases {
			fmt.Printf("  phase %-6s interval %-8v (%d arrivals)\n", ph.Name, ph.Interval, ph.Arrivals)
		}
		for _, run := range r.Runs {
			fmt.Printf("  %-13s served=%-6d dropped=%-6d failed=%-4d p50=%-10v p99=%-10v %7.0f calls/s  window=%d server-limit=%d\n",
				run.Name, run.Served, run.Dropped, run.Failed, run.P50, run.P99,
				run.Throughput, run.FinalWindow, run.ServerMaxInflight)
		}
		fmt.Printf("  [generated in %v wall time]\n\n", time.Since(start).Round(time.Millisecond))
		if *adaptiveJSON != "" {
			data, err := json.MarshalIndent(r, "", "  ")
			if err == nil {
				err = os.WriteFile(*adaptiveJSON, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchharness: write %s: %v\n", *adaptiveJSON, err)
				os.Exit(1)
			}
		}
		if v := r.Violations(); len(v) != 0 {
			for _, msg := range v {
				fmt.Fprintf(os.Stderr, "benchharness: adaptive-smoke: VIOLATION: %s\n", msg)
			}
			os.Exit(1)
		}
		fmt.Println("adaptive-smoke ok: adaptive matches best static throughput with a tighter tail, both controllers active")
	})
	section(*fleetSmoke, func() {
		sessions, fleetCalls := 12, 128
		if *ci {
			sessions, fleetCalls = 6, 48
		}
		start := time.Now()
		r, err := bench.Fleet(sessions, fleetCalls, *fleetSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: fleet-smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("Fleet storm: %d sessions x %d launches across %d members, seed %d\n",
			r.Sessions, r.Calls, r.Members, *fleetSeed)
		fmt.Printf("  killed=%s survivors=%d failed=%d failovers=%d reconnects=%d replays=%d\n",
			r.Killed, r.Survivors, r.Failed, r.Failovers, r.Reconnects, r.Replays)
		fmt.Printf("  failover recovery %.2f ms (worst session, wall clock)\n", r.RecoveryMS)
		fmt.Printf("  routed overhead %.2f%% simulated (%.3f vs %.3f ms), %.2f%% wall clock\n",
			r.OverheadPct, r.RoutedSimMS, r.DirectSimMS, r.WallOverheadPct)
		fmt.Printf("  [generated in %v wall time]\n\n", time.Since(start).Round(time.Millisecond))
		if *fleetJSON != "" {
			data, err := json.MarshalIndent(r, "", "  ")
			if err == nil {
				err = os.WriteFile(*fleetJSON, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchharness: write %s: %v\n", *fleetJSON, err)
				os.Exit(1)
			}
		}
		if v := r.Violations(); len(v) != 0 {
			for _, msg := range v {
				fmt.Fprintf(os.Stderr, "benchharness: fleet-smoke: VIOLATION: %s\n", msg)
			}
			os.Exit(1)
		}
		fmt.Println("fleet-smoke ok: zero lost sessions, digests bit-identical to single-server, routed overhead <5%")
	})
	section(*elasticSmoke, func() {
		sessions, elCalls := 8, 96
		if *ci {
			sessions, elCalls = 5, 48
		}
		start := time.Now()
		r, err := bench.Elastic(sessions, elCalls, *elasticSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: elastic-smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("Elastic membership storm: %d sessions x %d launches, %d members self-registered, seed %d\n",
			r.Sessions, r.Calls, r.Members, *elasticSeed)
		fmt.Printf("  survivors=%d failed=%d mismatches=%d\n", r.Survivors, r.Failed, r.Mismatches)
		fmt.Printf("  joined=%d suspects=%d evicted=%d rejoined=%v retired=%d moved=%d\n",
			r.Joined, r.Suspects, r.Evicted, r.Rejoined, r.Retired, r.RetireMoved)
		fmt.Printf("  parked=%d cold-starts=%d coalesced=%d wake-failures=%d\n",
			r.Parked, r.ColdStarts, r.WakeCoalesced, r.WakeFailures)
		fmt.Printf("  cold attach %.2f ms vs warm attach %.2f ms (wall clock)\n", r.ColdAttachMS, r.WarmAttachMS)
		fmt.Printf("  [generated in %v wall time]\n\n", time.Since(start).Round(time.Millisecond))
		if *elasticJSON != "" {
			data, err := json.MarshalIndent(r, "", "  ")
			if err == nil {
				err = os.WriteFile(*elasticJSON, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchharness: write %s: %v\n", *elasticJSON, err)
				os.Exit(1)
			}
		}
		if v := r.Violations(); len(v) != 0 {
			for _, msg := range v {
				fmt.Fprintf(os.Stderr, "benchharness: elastic-smoke: VIOLATION: %s\n", msg)
			}
			os.Exit(1)
		}
		fmt.Println("elastic-smoke ok: zero lost sessions through join/evict/heal/retire/park, one cold start per wake storm, digests bit-identical")
	})
	section(*migrateSmoke, func() {
		sessions, migCalls := 9, 96
		if *ci {
			sessions, migCalls = 6, 48
		}
		start := time.Now()
		r, err := bench.Migrate(sessions, migCalls, *migrateSeed, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: migrate-smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("Migration storm: %d sessions x %d launches homed on 1 of %d members, seed %d\n",
			r.Sessions, r.Calls, r.Members, *migrateSeed)
		fmt.Printf("  migrated key=%s %s -> %s in %d pre-copy round(s)\n",
			r.MigratedKey, r.From, r.To, r.Rounds)
		fmt.Printf("  full checkpoint %d B, pre-copied %d B live, cutover delta %d B (%.1f%% of full)\n",
			r.FullBytes, r.PrecopyBytes, r.DeltaBytes, 100*float64(r.DeltaBytes)/float64(r.FullBytes))
		fmt.Printf("  cutover pause %.2f ms (gate %.0f ms); survivors=%d failed=%d mismatches=%d\n",
			r.PauseMS, r.PauseGateMS, r.Survivors, r.Failed, r.Mismatches)
		fmt.Printf("  abort phase: clean=%v source-intact=%v retry=%v\n",
			r.AbortClean, r.AbortDigestOK, r.AbortRetryOK)
		fmt.Printf("  [generated in %v wall time]\n\n", time.Since(start).Round(time.Millisecond))
		if *migrateJSON != "" {
			data, err := json.MarshalIndent(r, "", "  ")
			if err == nil {
				err = os.WriteFile(*migrateJSON, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchharness: write %s: %v\n", *migrateJSON, err)
				os.Exit(1)
			}
		}
		if v := r.Violations(); len(v) != 0 {
			for _, msg := range v {
				fmt.Fprintf(os.Stderr, "benchharness: migrate-smoke: VIOLATION: %s\n", msg)
			}
			os.Exit(1)
		}
		fmt.Println("migrate-smoke ok: zero lost sessions, digests bit-identical, delta <=50% of full, pause bounded, abort clean")
	})
	section(*dcSmoke, func() {
		users := *dcUsers
		if *ci {
			users = 600_000
		}
		start := time.Now()
		r, err := bench.Datacenter(users, *dcSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: datacenter-smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("Datacenter day: %d simulated users -> %d requests across %d members, seed %d\n",
			r.Users, r.Requests, r.Members, r.Seed)
		fmt.Printf("  completed=%d shed(latency)=%d shed(batch)=%d expired=%d lost=%d mismatches=%d\n",
			r.Completed, r.ShedLatency, r.ShedBatch, r.Expired, r.Lost, r.Mismatches)
		fmt.Printf("  parks=%d cold-starts=%d shed-rate=%.1f%% launches=%d redos=%d\n",
			r.Parks, r.ColdStarts, r.ShedRate*100, r.Launches, r.Redos)
		fmt.Printf("  latency class: p99 TTFT %.2f ms (budget %.0f ms), p99 per-token %.2f ms\n",
			r.TTFTp99MS, r.TTFTBudgetMS, r.PTokP99MS)
		for _, ph := range r.Phases {
			fmt.Printf("  %-9s submitted=%-3d shed=%-3d window-completions=%-3d p99 TTFT %.2f ms, p99 per-token %.2f ms\n",
				ph.Name, ph.Submitted, ph.Shed, ph.Completed, ph.TTFTp99MS, ph.PTokP99MS)
		}
		fmt.Printf("  [generated in %v wall time]\n\n", time.Since(start).Round(time.Millisecond))
		if *dcJSON != "" {
			data, err := json.MarshalIndent(r, "", "  ")
			if err == nil {
				err = os.WriteFile(*dcJSON, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchharness: write %s: %v\n", *dcJSON, err)
				os.Exit(1)
			}
		}
		if v := r.Violations(); len(v) != 0 {
			for _, msg := range v {
				fmt.Fprintf(os.Stderr, "benchharness: datacenter-smoke: VIOLATION: %s\n", msg)
			}
			os.Exit(1)
		}
		fmt.Println("datacenter-smoke ok: zero lost requests, digests bit-identical to the static run, fleet parked and cold-started on cue, batch class shed first, latency TTFT in budget")
	})

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
