// Command cricket-fleet supervises a pool of cricket-server members:
// it probes their health over the cricket RPC protocol (epoch plus
// device-memory headroom), maintains the rendezvous-hashed placement
// view, and serves that view over HTTP so operators and tooling can
// see where any session key would land and which members are down.
//
// The fleet layer itself is a client-side library (internal/fleet):
// guests embed the pool and route their own sessions. This binary is
// the operational companion — the standing prober and status endpoint
// for a deployment, or a one-shot health check for scripts.
//
// Usage:
//
//	cricket-fleet -members gpu0=host0:9999,gpu1=host1:9999,gpu2=host2:9999
//	cricket-fleet -members host0:9999,host1:9999 -once
//	cricket-fleet -members ... -status-addr :9980
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cricket/internal/fleet"
)

// parseMembers turns "name=addr,name=addr" (or bare "addr,addr") into
// fleet members dialing TCP. A bare address doubles as its own name.
func parseMembers(spec string, dialTimeout time.Duration) ([]fleet.Member, error) {
	var members []fleet.Member
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr := part, part
		if i := strings.IndexByte(part, '='); i >= 0 {
			name, addr = part[:i], part[i+1:]
		}
		if name == "" || addr == "" {
			return nil, fmt.Errorf("malformed member %q (want name=addr or addr)", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate member name %q", name)
		}
		seen[name] = true
		members = append(members, fleet.Member{
			Name: name,
			Dial: func() (io.ReadWriteCloser, error) {
				return net.DialTimeout("tcp", addr, dialTimeout)
			},
		})
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("no members in %q", spec)
	}
	return members, nil
}

func printStatus(w io.Writer, p *fleet.Pool) int {
	down := 0
	fmt.Fprintf(w, "%-12s %-6s %-18s %-10s %-14s %s\n",
		"MEMBER", "STATE", "EPOCH", "SESSIONS", "FREE-MEM", "PROBES(FAIL)")
	for _, st := range p.Members() {
		state := "up"
		if st.Down {
			state = "DOWN"
			down++
		}
		free := "?"
		if st.MemKnown {
			free = fmt.Sprintf("%d MiB", st.FreeMem>>20)
		}
		fmt.Fprintf(w, "%-12s %-6s %-18s %-10d %-14s %d(%d)\n",
			st.Name, state, fmt.Sprintf("%#x", st.Epoch), st.Sessions, free, st.Probes, st.ProbeFails)
	}
	return down
}

func main() {
	membersSpec := flag.String("members", "", "comma-separated pool members, name=host:port or host:port")
	probeInterval := flag.Duration("probe-interval", time.Second, "health-probe period")
	downAfter := flag.Int("down-after", 3, "consecutive probe/dial failures before a member is marked down")
	upAfter := flag.Int("up-after", 2, "consecutive probe successes before a down member is marked up")
	shedCooldown := flag.Duration("shed-cooldown", time.Second, "how long routing passes over a member after it sheds with a retry hint")
	minHeadroom := flag.Uint64("min-headroom", 0, "device-memory bytes a member must report free to receive new placements (0: no floor)")
	dialTimeout := flag.Duration("dial-timeout", 5*time.Second, "TCP connect timeout per member")
	statusAddr := flag.String("status-addr", "", "HTTP listen address for the JSON status endpoint (empty: disabled)")
	once := flag.Bool("once", false, "run one probe round, print the member table, exit 1 if any member is down")
	rebalance := flag.Bool("rebalance", false, "one-shot: probe, live-migrate one session off the busiest member, print the move, exit")
	flag.Parse()

	if *membersSpec == "" {
		fmt.Fprintln(os.Stderr, "cricket-fleet: -members is required")
		flag.Usage()
		os.Exit(2)
	}
	members, err := parseMembers(*membersSpec, *dialTimeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cricket-fleet:", err)
		os.Exit(2)
	}
	pool, err := fleet.New(fleet.Options{
		ProbeInterval: *probeInterval,
		DownAfter:     *downAfter,
		UpAfter:       *upAfter,
		ShedCooldown:  *shedCooldown,
		MinHeadroom:   *minHeadroom,
	}, members...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cricket-fleet:", err)
		os.Exit(2)
	}

	if *once {
		// Enough rounds for the failure hysteresis to resolve, so a
		// member dead right now is reported down, not merely suspect.
		for i := 0; i < *downAfter; i++ {
			pool.ProbeOnce()
		}
		if down := printStatus(os.Stdout, pool); down > 0 {
			fmt.Fprintf(os.Stderr, "cricket-fleet: %d member(s) down\n", down)
			os.Exit(1)
		}
		return
	}

	if *rebalance {
		// Rebalance moves sessions this process owns; the standalone
		// supervisor owns none, so this is a no-op health pass unless
		// the binary grows embedded sessions. Kept as the operational
		// surface so embedders and scripts share one entry point.
		for i := 0; i < *downAfter; i++ {
			pool.ProbeOnce()
		}
		rep, err := pool.Rebalance()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cricket-fleet: rebalance:", err)
			os.Exit(1)
		}
		if rep == nil {
			fmt.Println("rebalance: pool already balanced (or no migratable sessions)")
			return
		}
		fmt.Printf("rebalance: moved %s %s -> %s (rounds=%d full=%dB delta=%dB pause=%s)\n",
			rep.Key, rep.From, rep.To, rep.Report.Rounds, rep.Report.FullBytes,
			rep.Report.DeltaBytes, rep.Report.Pause.Round(10*time.Microsecond))
		return
	}

	if *statusAddr != "" {
		mux := http.NewServeMux()
		writeJSON := func(w http.ResponseWriter, v any) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(v); err != nil {
				log.Printf("status: %v", err)
			}
		}
		mux.HandleFunc("/fleet", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, struct {
				Members []fleet.MemberStatus `json:"members"`
				Stats   fleet.PoolStats      `json:"stats"`
			}{pool.Members(), pool.Stats()})
		})
		mux.HandleFunc("/rebalance", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			rep, err := pool.Rebalance()
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			writeJSON(w, struct {
				Moved  bool                   `json:"moved"`
				Report *fleet.RebalanceReport `json:"report,omitempty"`
			}{rep != nil, rep})
		})
		mux.HandleFunc("/place", func(w http.ResponseWriter, r *http.Request) {
			key := r.URL.Query().Get("key")
			if key == "" {
				http.Error(w, "missing ?key=", http.StatusBadRequest)
				return
			}
			placed, _ := pool.Placement(key)
			writeJSON(w, struct {
				Key     string   `json:"key"`
				Ranking []string `json:"ranking"`
				Placed  string   `json:"placed,omitempty"`
			}{key, pool.RankFor(key), placed})
		})
		sl, err := net.Listen("tcp", *statusAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("status endpoint on http://%s/{fleet,place?key=...,rebalance}", sl.Addr())
		go func() {
			if err := http.Serve(sl, mux); err != nil {
				log.Printf("status listener: %v", err)
			}
		}()
	}

	stop := pool.StartProber()
	defer stop()
	log.Printf("probing %d member(s) every %v (down after %d failures, up after %d successes)",
		len(members), *probeInterval, *downAfter, *upAfter)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	log.Printf("received %v: stopping prober", got)
	printStatus(os.Stderr, pool)
}
