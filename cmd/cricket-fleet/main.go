// Command cricket-fleet supervises a pool of cricket-server members:
// it probes their health over the cricket RPC protocol (epoch plus
// device-memory headroom), maintains the rendezvous-hashed placement
// view, and serves that view over HTTP so operators and tooling can
// see where any session key would land and which members are down.
//
// The fleet layer itself is a client-side library (internal/fleet):
// guests embed the pool and route their own sessions. This binary is
// the operational companion — the standing prober and status endpoint
// for a deployment, or a one-shot health check for scripts.
//
// Usage:
//
//	cricket-fleet -members gpu0=host0:9999,gpu1=host1:9999,gpu2=host2:9999
//	cricket-fleet -members host0:9999,host1:9999 -once
//	cricket-fleet -members ... -status-addr :9980
//	cricket-fleet -registry-addr :9970 -status-addr :9980
//
// With -registry-addr the membership is elastic: cricket-server
// instances self-register over the FLEET_REG_PROG protocol (see
// cricket-server -registry) and are admitted under TTL'd leases —
// a member that stops renewing demotes, then is evicted; -members
// becomes optional seed membership.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"cricket/internal/fleet"
	"cricket/internal/oncrpc"
)

// parseMembers turns "name=addr,name=addr" (or bare "addr,addr") into
// fleet members dialing TCP. A bare address doubles as its own name.
func parseMembers(spec string, dialTimeout time.Duration) ([]fleet.Member, error) {
	var members []fleet.Member
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr := part, part
		if i := strings.IndexByte(part, '='); i >= 0 {
			name, addr = part[:i], part[i+1:]
		}
		if name == "" || addr == "" {
			return nil, fmt.Errorf("malformed member %q (want name=addr or addr)", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate member name %q", name)
		}
		seen[name] = true
		members = append(members, fleet.Member{
			Name: name,
			Dial: func() (io.ReadWriteCloser, error) {
				return net.DialTimeout("tcp", addr, dialTimeout)
			},
		})
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("no members in %q", spec)
	}
	return members, nil
}

func printStatus(w io.Writer, p *fleet.Pool) int {
	down := 0
	fmt.Fprintf(w, "%-12s %-6s %-18s %-10s %-14s %s\n",
		"MEMBER", "STATE", "EPOCH", "SESSIONS", "FREE-MEM", "PROBES(FAIL)")
	for _, st := range p.Members() {
		state := "up"
		if st.Down {
			state = "DOWN"
			down++
		}
		free := "?"
		if st.MemKnown {
			free = fmt.Sprintf("%d MiB", st.FreeMem>>20)
		}
		fmt.Fprintf(w, "%-12s %-6s %-18s %-10d %-14s %d(%d)\n",
			st.Name, state, fmt.Sprintf("%#x", st.Epoch), st.Sessions, free, st.Probes, st.ProbeFails)
	}
	return down
}

func main() {
	membersSpec := flag.String("members", "", "comma-separated pool members, name=host:port or host:port")
	probeInterval := flag.Duration("probe-interval", time.Second, "health-probe period")
	downAfter := flag.Int("down-after", 3, "consecutive probe/dial failures before a member is marked down")
	upAfter := flag.Int("up-after", 2, "consecutive probe successes before a down member is marked up")
	shedCooldown := flag.Duration("shed-cooldown", time.Second, "how long routing passes over a member after it sheds with a retry hint")
	minHeadroom := flag.Uint64("min-headroom", 0, "device-memory bytes a member must report free to receive new placements (0: no floor)")
	dialTimeout := flag.Duration("dial-timeout", 5*time.Second, "TCP connect timeout per member")
	statusAddr := flag.String("status-addr", "", "HTTP listen address for the JSON status endpoint (empty: disabled)")
	registryAddr := flag.String("registry-addr", "", "TCP listen address for member self-registration (FLEET_REG_PROG); makes -members optional seed membership")
	memberTTL := flag.Duration("member-ttl", 5*time.Second, "with -registry-addr: default membership-lease TTL granted to self-registering members")
	idlePark := flag.Duration("idle-park", 0, "park members idle this long (scale to zero; first attach pays the wake; 0: never park)")
	wakeDelay := flag.Duration("wake-delay", 0, "modeled cold-start delay charged when an attach wakes a parked member")
	shutdownDeadline := flag.Duration("shutdown-deadline", 5*time.Second, "on SIGTERM/SIGINT: how long in-flight HTTP requests get to finish")
	once := flag.Bool("once", false, "run one probe round, print the member table, exit 1 if any member is down")
	rebalance := flag.Bool("rebalance", false, "one-shot: probe, live-migrate one session off the busiest member, print the move, exit")
	flag.Parse()

	if *membersSpec == "" && *registryAddr == "" {
		fmt.Fprintln(os.Stderr, "cricket-fleet: need -members, -registry-addr, or both")
		flag.Usage()
		os.Exit(2)
	}
	var members []fleet.Member
	var err error
	if *membersSpec != "" {
		members, err = parseMembers(*membersSpec, *dialTimeout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cricket-fleet:", err)
			os.Exit(2)
		}
	}
	pool, err := fleet.New(fleet.Options{
		ProbeInterval: *probeInterval,
		DownAfter:     *downAfter,
		UpAfter:       *upAfter,
		ShedCooldown:  *shedCooldown,
		MinHeadroom:   *minHeadroom,
		IdlePark:      *idlePark,
		WakeDelay:     *wakeDelay,
	}, members...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cricket-fleet:", err)
		os.Exit(2)
	}

	if *once {
		// Enough rounds for the failure hysteresis to resolve, so a
		// member dead right now is reported down, not merely suspect.
		for i := 0; i < *downAfter; i++ {
			pool.ProbeOnce()
		}
		if down := printStatus(os.Stdout, pool); down > 0 {
			fmt.Fprintf(os.Stderr, "cricket-fleet: %d member(s) down\n", down)
			os.Exit(1)
		}
		return
	}

	if *rebalance {
		// Rebalance moves sessions this process owns; the standalone
		// supervisor owns none, so this is a no-op health pass unless
		// the binary grows embedded sessions. Kept as the operational
		// surface so embedders and scripts share one entry point.
		for i := 0; i < *downAfter; i++ {
			pool.ProbeOnce()
		}
		rep, err := pool.Rebalance()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cricket-fleet: rebalance:", err)
			os.Exit(1)
		}
		if rep == nil {
			fmt.Println("rebalance: pool already balanced (or no migratable sessions)")
			return
		}
		fmt.Printf("rebalance: moved %s %s -> %s (rounds=%d full=%dB delta=%dB pause=%s)\n",
			rep.Key, rep.From, rep.To, rep.Report.Rounds, rep.Report.FullBytes,
			rep.Report.DeltaBytes, rep.Report.Pause.Round(10*time.Microsecond))
		return
	}

	// draining flips when shutdown begins: the status surface answers
	// 503 so load balancers and scripts stop routing control traffic
	// at a supervisor that is about to disappear.
	var draining atomic.Bool
	var statusSrv *http.Server
	if *statusAddr != "" {
		mux := http.NewServeMux()
		writeJSON := func(w http.ResponseWriter, v any) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(v); err != nil {
				log.Printf("status: %v", err)
			}
		}
		guard := func(h http.HandlerFunc) http.HandlerFunc {
			return func(w http.ResponseWriter, r *http.Request) {
				if draining.Load() {
					http.Error(w, "shutting down", http.StatusServiceUnavailable)
					return
				}
				h(w, r)
			}
		}
		mux.HandleFunc("/fleet", guard(func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, struct {
				Members []fleet.MemberStatus `json:"members"`
				Stats   fleet.PoolStats      `json:"stats"`
			}{pool.Members(), pool.Stats()})
		}))
		mux.HandleFunc("/rebalance", guard(func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			rep, err := pool.Rebalance()
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			writeJSON(w, struct {
				Moved  bool                   `json:"moved"`
				Report *fleet.RebalanceReport `json:"report,omitempty"`
			}{rep != nil, rep})
		}))
		mux.HandleFunc("/place", guard(func(w http.ResponseWriter, r *http.Request) {
			key := r.URL.Query().Get("key")
			if key == "" {
				http.Error(w, "missing ?key=", http.StatusBadRequest)
				return
			}
			placed, _ := pool.Placement(key)
			writeJSON(w, struct {
				Key     string   `json:"key"`
				Ranking []string `json:"ranking"`
				Placed  string   `json:"placed,omitempty"`
			}{key, pool.RankFor(key), placed})
		}))
		sl, err := net.Listen("tcp", *statusAddr)
		if err != nil {
			log.Fatal(err)
		}
		// A stuck or malicious peer must not pin a handler goroutine
		// forever: every phase of a status request is deadlined.
		statusSrv = &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			WriteTimeout:      30 * time.Second, // /rebalance ships device memory
		}
		log.Printf("status endpoint on http://%s/{fleet,place?key=...,rebalance}", sl.Addr())
		go func() {
			if err := statusSrv.Serve(sl); err != nil && err != http.ErrServerClosed {
				log.Printf("status listener: %v", err)
			}
		}()
	}

	var regRPC *oncrpc.Server
	if *registryAddr != "" {
		registry := fleet.NewRegistry(pool, fleet.RegistryOptions{
			DefaultTTL: *memberTTL,
			Dial: func(_, addr string) (io.ReadWriteCloser, error) {
				return net.DialTimeout("tcp", addr, *dialTimeout)
			},
			Logf: log.Printf,
		})
		regRPC = oncrpc.NewServer()
		regRPC.ErrorLog = log.Default()
		registry.Attach(regRPC)
		sweep := *memberTTL / 6
		if sweep < 50*time.Millisecond {
			sweep = 50 * time.Millisecond
		}
		stopSweep := registry.StartSweeper(sweep)
		defer stopSweep()
		rl, err := net.Listen("tcp", *registryAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("registry (prog %#x vers %d) listening on %s: %v default lease, sweep every %v",
			fleet.FleetRegProg, fleet.FleetRegVers, rl.Addr(), *memberTTL, sweep)
		go func() {
			if err := regRPC.Serve(rl); err != nil && err != oncrpc.ErrServerClosed {
				log.Printf("registry listener: %v", err)
			}
		}()
	}

	stop := pool.StartProber()
	defer stop()
	if *idlePark > 0 {
		stopParker := pool.StartParker(0)
		defer stopParker()
		log.Printf("scale-to-zero: parking members idle longer than %v", *idlePark)
	}
	log.Printf("probing %d member(s) every %v (down after %d failures, up after %d successes)",
		len(members), *probeInterval, *downAfter, *upAfter)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	draining.Store(true)
	log.Printf("received %v: draining (deadline %v)", got, *shutdownDeadline)
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownDeadline)
	defer cancel()
	if regRPC != nil {
		if err := regRPC.Shutdown(ctx); err != nil {
			log.Printf("registry drain: %v", err)
		}
	}
	if statusSrv != nil {
		if err := statusSrv.Shutdown(ctx); err != nil {
			log.Printf("status drain: %v", err)
		}
	}
	printStatus(os.Stderr, pool)
}
