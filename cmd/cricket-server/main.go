// Command cricket-server runs a standalone Cricket server over real
// TCP: the process that owns the (simulated) GPUs on the paper's
// dedicated GPU node. Any number of cricket-run clients — or any ONC
// RPC client speaking the cricket.x protocol — can connect and share
// the devices.
//
// Usage:
//
//	cricket-server [-listen :9999] [-gpus a100,t4] [-metrics-addr :9990]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cricket/internal/cricket"
	"cricket/internal/cuda"
	"cricket/internal/fleet"
	"cricket/internal/gpu"
	"cricket/internal/oncrpc"
)

func specFor(name string) (gpu.Spec, error) {
	switch strings.ToLower(name) {
	case "a100":
		return gpu.SpecA100, nil
	case "t4":
		return gpu.SpecT4, nil
	case "p40":
		return gpu.SpecP40, nil
	}
	return gpu.Spec{}, fmt.Errorf("unknown GPU model %q (want a100, t4, or p40)", name)
}

func main() {
	listen := flag.String("listen", ":9999", "TCP listen address for RPC")
	dataListen := flag.String("data-listen", "", "TCP listen address for parallel-socket data channels (empty: disabled)")
	gpus := flag.String("gpus", "a100", "comma-separated device list (a100, t4, p40)")
	ckpDir := flag.String("checkpoint-dir", "", "directory for persisted checkpoints; existing ones are loaded at boot (empty: in-memory only)")
	metricsAddr := flag.String("metrics-addr", "", "HTTP listen address for the JSON metrics/trace endpoint (empty: observability disabled)")
	traceRing := flag.Int("trace-ring", 0, "with -metrics-addr: trace ring-buffer capacity in spans (0: default)")
	leaseTTL := flag.Duration("lease-ttl", 0, "client lease TTL: a client silent this long has its orphaned GPU resources reclaimed (0: leases never expire)")
	maxClients := flag.Int("max-clients", 0, "cap on concurrently leased clients; excess attaches are shed with a retry hint (0: unlimited)")
	maxClientMem := flag.Uint64("max-client-mem", 0, "per-client device-memory cap in bytes; cudaMemGetInfo reports the clamped view (0: unlimited)")
	maxInflight := flag.Int("max-inflight", 0, "cap on concurrently executing calls; excess is shed with cudaErrorServerOverloaded plus a retry hint (0: unlimited)")
	adaptiveAdmission := flag.Bool("adaptive-admission", false, "adaptively tune the in-flight ceiling and shed retry hint from windowed dispatch latency; -max-inflight is superseded")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "on SIGTERM/SIGINT: how long to let in-flight calls finish before hard-closing")
	disableShm := flag.Bool("disable-shm", false, "refuse shared-memory transfer negotiation (clients degrade to rpc-args, or fail if they require it)")
	registryAddr := flag.String("registry", "", "cricket-fleet registry address to self-register with (empty: no registration)")
	advertise := flag.String("advertise", "", "with -registry: address advertised for the fleet to dial back (default: -listen)")
	memberName := flag.String("member-name", "", "with -registry: member identity to register under (default: hostname)")
	memberTTL := flag.Duration("member-ttl", 0, "with -registry: requested membership-lease TTL (0: registry default)")
	flag.Parse()

	var devices []*gpu.Device
	for _, name := range strings.Split(*gpus, ",") {
		spec, err := specFor(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "cricket-server:", err)
			os.Exit(2)
		}
		devices = append(devices, gpu.New(spec))
		log.Printf("device %d: %s", len(devices)-1, spec.String())
	}

	rt := cuda.NewRuntime(nil, devices...)
	srv := cricket.NewServer(rt)
	srv.ErrorLog = log.Default()
	rpcSrv := oncrpc.NewServer()
	rpcSrv.ErrorLog = log.Default()
	srv.Attach(rpcSrv)

	if *disableShm {
		srv.DisableSharedMem()
		log.Printf("shared-memory transfers disabled by policy")
	}

	if *leaseTTL > 0 || *maxClients > 0 || *maxClientMem > 0 || *maxInflight > 0 {
		srv.SetLimits(cricket.Limits{
			LeaseTTL:     *leaseTTL,
			MaxClients:   *maxClients,
			MaxClientMem: *maxClientMem,
			MaxInflight:  *maxInflight,
		})
		log.Printf("governance: lease-ttl=%v max-clients=%d max-client-mem=%d max-inflight=%d",
			*leaseTTL, *maxClients, *maxClientMem, *maxInflight)
		if *leaseTTL > 0 {
			stop := srv.StartLeaseSweeper(0)
			defer stop()
		}
	}

	if *metricsAddr != "" {
		col := cricket.NewCollector(*traceRing)
		srv.SetObserver(col)
		mux := http.NewServeMux()
		writeJSON := func(w http.ResponseWriter, write func(io.Writer) error) {
			w.Header().Set("Content-Type", "application/json")
			if err := write(w); err != nil {
				log.Printf("metrics: %v", err)
			}
		}
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, col.WriteMetricsJSON)
		})
		mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, col.WriteTraceJSON)
		})
		mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, func(wr io.Writer) error {
				enc := json.NewEncoder(wr)
				enc.SetIndent("", "  ")
				return enc.Encode(srv.Stats())
			})
		})
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("metrics endpoint on http://%s/{metrics,trace,stats}", ml.Addr())
		go func() {
			if err := http.Serve(ml, mux); err != nil {
				log.Printf("metrics listener: %v", err)
			}
		}()
	}

	if *adaptiveAdmission {
		// The tuner reads windowed dispatch-latency deltas from the
		// observer; install a collector even when the metrics endpoint
		// is off.
		if srv.Observer() == nil {
			srv.SetObserver(cricket.NewCollector(*traceRing))
		}
		tuner, err := srv.StartAutoTuner(cricket.AutoTuneConfig{})
		if err != nil {
			log.Fatal(err)
		}
		defer tuner.Stop()
		limits := srv.Limits()
		log.Printf("adaptive admission: max-inflight starts at %d, retry hint %v, both walk with measured load",
			limits.MaxInflight, limits.RetryAfter)
	}

	if *ckpDir != "" {
		if err := srv.SetCheckpointDir(*ckpDir); err != nil {
			log.Fatal(err)
		}
		log.Printf("persisting checkpoints to %s (epoch %#x)", *ckpDir, srv.Epoch())
	}

	if *dataListen != "" {
		dl, err := net.Listen("tcp", *dataListen)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("data channels listening on %s", *dataListen)
		go func() {
			if err := srv.ServeData(dl); err != nil {
				log.Printf("data listener: %v", err)
			}
		}()
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	// Co-host a port mapper and self-register, so libtirpc-style
	// clients can discover the service (RFC 1833).
	pm := oncrpc.NewPortmap()
	pm.Register(rpcSrv)
	port := uint32(l.Addr().(*net.TCPAddr).Port)
	pm.Set(oncrpc.Mapping{Prog: cricket.RpcCdProg, Vers: cricket.RpcCdVers, Prot: oncrpc.IPProtoTCP, Port: port})

	log.Printf("cricket server (prog %#x vers %d) listening on %s", cricket.RpcCdProg, cricket.RpcCdVers, l.Addr())

	// Self-register with the fleet registry and keep the lease renewed
	// on a jittered cadence; on shutdown the deregistration drains and
	// migrates this member's sessions before the process exits.
	var registrar *fleet.Registrar
	if *registryAddr != "" {
		name := *memberName
		if name == "" {
			if name, err = os.Hostname(); err != nil || name == "" {
				log.Fatalf("-member-name required (hostname unavailable: %v)", err)
			}
		}
		addr := *advertise
		if addr == "" {
			addr = l.Addr().String()
		}
		registrar, err = fleet.StartRegistrar(fleet.RegistrarOptions{
			Name:  name,
			Addr:  addr,
			Epoch: srv.Epoch(),
			TTL:   *memberTTL,
			Dial: func() (io.ReadWriteCloser, error) {
				return net.DialTimeout("tcp", *registryAddr, 5*time.Second)
			},
			Seed: srv.Epoch(),
			Logf: log.Printf,
		})
		if err != nil {
			log.Fatalf("registering with %s as %q: %v", *registryAddr, name, err)
		}
		lease := registrar.Lease()
		log.Printf("registered with %s as %q advertising %s: lease %dms, renew every ~%dms",
			*registryAddr, name, addr, lease.TtlMs, lease.HeartbeatMs)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- rpcSrv.Serve(l) }()
	select {
	case err := <-serveErr:
		if err != nil && err != oncrpc.ErrServerClosed {
			log.Fatal(err)
		}
	case got := <-sig:
		// Graceful drain: stop accepting, let every in-flight call
		// finish and write its reply (bounded by -drain-timeout),
		// checkpoint, exit cleanly.
		log.Printf("received %v: draining connections (timeout %v)", got, *drainTimeout)
		if registrar != nil {
			// Leave the fleet first: the registry drains admissions and
			// live-migrates our sessions off while we can still serve.
			if err := registrar.Stop(); err != nil {
				log.Printf("deregister: %v", err)
			} else {
				log.Printf("deregistered: sessions migrated off, lease released")
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := rpcSrv.Shutdown(ctx)
		cancel()
		if err != nil {
			log.Printf("drain timed out, stragglers hard-closed: %v", err)
		} else {
			log.Printf("drain complete: every in-flight call finished")
		}
		if *ckpDir != "" {
			if code, cerr := srv.CkpCheckpoint(); cerr != nil || code != 0 {
				log.Printf("final checkpoint failed (code %d): %v", code, cerr)
			} else {
				log.Printf("final checkpoint persisted to %s", *ckpDir)
			}
		}
	}
}
